// Command repromaster runs the master rank of a distributed repeats
// computation over TCP (Section 4.3 of the paper). It listens until the
// expected number of reproworker processes connect, farms out alignment
// tasks, performs acceptances and tracebacks, and prints the resulting
// top alignments.
//
//	repromaster -addr :7946 -slaves 2 -titin 2000 -tops 25
//	reproworker -addr host:7946 -threads 2   (on each worker machine)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/align"
	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/repeats"
	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/stats"
	"repro/internal/topalign"
)

func main() {
	var (
		addr     = flag.String("addr", ":7946", "listen address")
		slaves   = flag.Int("slaves", 1, "number of reproworker processes to wait for")
		inPath   = flag.String("in", "", "FASTA input (first record is analysed)")
		titinLen = flag.Int("titin", 0, "analyse a synthetic titin-like protein of this length")
		matrix   = flag.String("matrix", "BLOSUM62", "exchange matrix name")
		tops     = flag.Int("tops", 25, "number of top alignments")
		lanes    = flag.Int("lanes", 0, "SIMD-style group lanes (0, 4, 8, 16)")
		spec     = flag.Bool("speculative", true, "speculative acceptance (paper mode)")
		timeout  = flag.Duration("timeout", 2*time.Minute, "worker connection timeout")

		hbInterval  = flag.Duration("hb-interval", 2*time.Second, "heartbeat interval (negative disables)")
		hbTimeout   = flag.Duration("hb-timeout", 8*time.Second, "declare a worker dead after this much silence")
		taskTimeout = flag.Duration("task-timeout", 30*time.Second, "re-dispatch a task unanswered for this long (0 disables)")
		debugAddr   = flag.String("debug-addr", "", "serve /metrics, /trace and pprof on this address (e.g. :9621; binds localhost unless a host is given; empty disables)")
	)
	flag.Parse()

	var (
		reg *obs.Registry
		jnl *obs.Journal
		col *trace.Collector
	)
	if *debugAddr != "" {
		reg = obs.NewRegistry()
		jnl = obs.NewJournal(0)
		col = trace.NewCollector(0, 0)
		dbg, err := obs.StartDebug(*debugAddr, reg, jnl, col)
		if err != nil {
			fatal(err)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "repromaster: debug endpoints on http://%s/{metrics,trace,debug/pprof}\n", dbg.Addr)
	}

	exch, ok := scoring.ByName(*matrix)
	if !ok {
		fatal(fmt.Errorf("unknown matrix %q", *matrix))
	}

	var q *seq.Sequence
	switch {
	case *titinLen > 0:
		q = seq.SyntheticTitin(*titinLen, 1)
	case *inPath != "":
		f, err := os.Open(*inPath)
		if err != nil {
			fatal(err)
		}
		recs, err := seq.ReadFASTA(f, exch.Alphabet())
		f.Close()
		if err != nil {
			fatal(err)
		}
		q = recs[0]
	default:
		fatal(fmt.Errorf("need -in or -titin"))
	}

	fmt.Fprintf(os.Stderr, "repromaster: waiting for %d workers on %s...\n", *slaves, *addr)
	opts := mpi.DefaultTCPOptions()
	opts.AcceptTimeout = *timeout
	opts.HeartbeatInterval = *hbInterval
	opts.HeartbeatTimeout = *hbTimeout
	opts.Metrics = reg
	comm, err := mpi.ListenTCPOpts(*addr, *slaves+1, opts)
	if err != nil {
		fatal(err)
	}
	defer comm.Close()
	fmt.Fprintf(os.Stderr, "repromaster: %d workers connected, analysing %s (%d residues)\n",
		*slaves, q.ID, q.Len())

	cfg := cluster.Config{
		Top: topalign.Config{
			Params:     align.Params{Exch: exch, Gap: scoring.DefaultProteinGap},
			NumTops:    *tops,
			GroupLanes: *lanes,
			Counters:   &stats.Counters{},
			Trace:      jnl,
		},
		Speculative: *spec,
		TaskTimeout: *taskTimeout,
		Metrics:     reg,
	}
	// With debug endpoints on, trace the run: the master records its own
	// and every shipped slave span into the collector, the trace is
	// served at /trace/{id}, and the critical path is printed at the end.
	var rec *trace.Recorder
	if col != nil {
		rec = col.Rec(trace.NewTraceID())
		cfg.Spans = rec
	}
	t0 := time.Now()
	res, err := cluster.RunMaster(comm, q.Codes, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "repromaster: %d top alignments in %.2fs\n",
		len(res.Tops), time.Since(t0).Seconds())
	fmt.Fprintf(os.Stderr, "repromaster: %s\n", res.Stats)
	if rec != nil {
		fmt.Fprintf(os.Stderr, "repromaster: trace %s\n", rec.TraceID())
		if spans, _, ok := col.Get(rec.TraceID()); ok {
			if rpt, err := trace.AnalyzeCriticalPath(spans); err == nil {
				for _, e := range rpt.Entries {
					fmt.Fprintf(os.Stderr, "repromaster:   %-10s %8.2fms %5.1f%%\n",
						e.Category, float64(e.NS)/1e6, 100*e.Frac)
				}
			}
		}
	}

	for _, top := range res.Tops {
		first, last := top.Pairs[0], top.Pairs[len(top.Pairs)-1]
		fmt.Printf("top %2d: score %6d split %5d  [%d-%d] ~ [%d-%d]\n",
			top.Index, top.Score, top.Split, first.I, last.I, first.J, last.J)
	}
	fams, err := repeats.Delineate(q.Len(), res.Tops, repeats.Options{})
	if err != nil {
		fatal(err)
	}
	for i, fam := range fams {
		fmt.Printf("family %d: %d copies, unit ~%d\n", i+1, len(fam.Copies), fam.UnitLen())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repromaster:", err)
	os.Exit(1)
}
