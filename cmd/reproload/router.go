package main

// Router-scaling benchmark (-router-compare): runs the warm-hit load
// phase against an in-process router fronting fleets of different
// sizes and emits one combined document (BENCH_PR8.json schema).
//
// Measuring scale-OUT honestly on one machine needs a capacity model:
// every shard shares the same CPUs, so raw warm throughput would
// measure the box, not the fabric. Each shard therefore runs with a
// token-bucket rate cap (-shard-rate) — a declared per-node capacity,
// exactly what the limiter exists for in production — and the bench
// measures how much aggregate admitted throughput the router extracts
// from N capped shards. Near-linear scaling then means the router
// spreads keys evenly and loses nothing to routing overhead; it does
// NOT claim one box computes 4x faster.
//
// With -kill-shard the largest fleet's run abruptly kills one shard
// mid-load; the router must absorb it (retry + passive eviction) with
// zero client-visible failures.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/atomicfile"
	"repro/internal/obs"
	"repro/internal/seq"
	"repro/internal/serve"
	"repro/internal/shard"
)

type routerBenchConfig struct {
	fleets    []int // e.g. {1, 4}
	shardRate float64
	clients   int
	duration  time.Duration
	seqs      int
	length    int
	tops      int
	seed      uint64
	killShard bool
	outPath   string
}

type routerPhase struct {
	Shards          int       `json:"shards"`
	Requests        int64     `json:"requests"`
	Errors          int64     `json:"errors"`
	Shed429         int64     `json:"shed_429"`
	Throughput      float64   `json:"throughput_rps"`
	CacheHitRate    float64   `json:"cache_hit_rate"`
	Latency         quantiles `json:"latency_ms"`
	ShardsAnswering int       `json:"shards_answering"`
	FlightShared    int64     `json:"flight_shared"`
}

type killResult struct {
	FleetSize         int     `json:"fleet_size"`
	KilledAtS         float64 `json:"killed_at_s"`
	RequestsAfterKill int64   `json:"requests_after_kill"`
	Errors            int64   `json:"errors"`
	RingSizeAfter     int64   `json:"ring_size_after"`
}

type routerOutput struct {
	Bench       string  `json:"bench"`
	Clients     int     `json:"clients"`
	DurationS   float64 `json:"duration_s"`
	DistinctSeq int     `json:"distinct_seqs"`
	SeqLen      int     `json:"seq_len"`
	Tops        int     `json:"tops"`
	ShardRate   float64 `json:"shard_rate_limit_rps"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	GoVersion   string  `json:"go_version"`
	// Note records the capacity model so the scaling number cannot be
	// misread as single-box compute scaling.
	Note string `json:"note"`

	Phases      []routerPhase `json:"phases"`
	WarmScaling float64       `json:"warm_scaling_x"`
	Kill        *killResult   `json:"shard_kill,omitempty"`
}

// fleetShard is one in-process reproserve with its own listener, so
// the bench can kill it abruptly mid-load.
type fleetShard struct {
	srv     *serve.Server
	httpSrv *http.Server
	ln      net.Listener
	url     string
}

func startFleetShard(rate float64) (*fleetShard, error) {
	srv := serve.New(serve.Config{
		Workers:   1, // shards share one box; real deployments get one fleet node each
		RateLimit: rate,
		Metrics:   obs.NewRegistry(),
	})
	srv.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	fs := &fleetShard{
		srv:     srv,
		httpSrv: &http.Server{Handler: srv.Handler()},
		ln:      ln,
		url:     "http://" + ln.Addr().String(),
	}
	go fs.httpSrv.Serve(ln) //nolint:errcheck
	return fs, nil
}

// kill closes the listener and every open connection — the abrupt
// failure the router's passive detection exists for.
func (fs *fleetShard) kill() { fs.httpSrv.Close() }

func (fs *fleetShard) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	fs.httpSrv.Shutdown(ctx) //nolint:errcheck
	fs.srv.Drain(ctx)        //nolint:errcheck
}

func runRouterCompare(cfg routerBenchConfig) {
	pool := make([]*seq.Sequence, cfg.seqs)
	for i := range pool {
		pool[i] = seq.SyntheticTitin(cfg.length, cfg.seed+uint64(i))
	}
	// Ground truth for warmup verification: every fleet size must
	// return the same bytes-identical analysis.
	truth := make([]*repro.Report, cfg.seqs)
	for i, q := range pool {
		rep, err := repro.Analyze(q.ID, q.String(), repro.Options{NumTops: cfg.tops})
		if err != nil {
			fatal(fmt.Errorf("local truth run: %w", err))
		}
		truth[i] = rep
	}
	bodies := make([][]byte, len(pool))
	for i, q := range pool {
		bodies[i], _ = json.Marshal(serve.Request{
			ID: q.ID, Sequence: q.String(), Params: serve.Params{Tops: cfg.tops},
		})
	}

	doc := routerOutput{
		Bench: "router-scaling", Clients: cfg.clients, DurationS: cfg.duration.Seconds(),
		DistinctSeq: cfg.seqs, SeqLen: cfg.length, Tops: cfg.tops, ShardRate: cfg.shardRate,
		GOMAXPROCS: runtime.GOMAXPROCS(0), GoVersion: runtime.Version(),
		Note: "shards share one machine and are capped at shard_rate_limit_rps each (declared per-node capacity); offered load is open-loop at 1.5x fleet capacity; warm_scaling_x measures router keyspace spreading over capped shards, not single-box compute scaling",
	}

	largest := cfg.fleets[0]
	for _, n := range cfg.fleets {
		if n > largest {
			largest = n
		}
	}
	for _, n := range cfg.fleets {
		kill := cfg.killShard && n == largest && n > 1
		phase, killRes := runRouterPhase(cfg, n, pool, truth, bodies, kill)
		doc.Phases = append(doc.Phases, phase)
		if killRes != nil {
			doc.Kill = killRes
		}
	}

	// Scaling: largest fleet's throughput over the smallest's.
	lo, hi := doc.Phases[0], doc.Phases[0]
	for _, p := range doc.Phases {
		if p.Shards < lo.Shards {
			lo = p
		}
		if p.Shards > hi.Shards {
			hi = p
		}
	}
	if lo.Throughput > 0 {
		doc.WarmScaling = hi.Throughput / lo.Throughput
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if cfg.outPath == "-" {
		os.Stdout.Write(enc) //nolint:errcheck
	} else if err := atomicfile.WriteFile(cfg.outPath, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "reproload: router scaling %dx shards -> %.2fx warm throughput\n",
		hi.Shards, doc.WarmScaling)

	var totalErrs int64
	for _, p := range doc.Phases {
		totalErrs += p.Errors
	}
	if totalErrs > 0 {
		fatal(fmt.Errorf("%d client-visible failures across router phases", totalErrs))
	}
}

func runRouterPhase(cfg routerBenchConfig, n int, pool []*seq.Sequence, truth []*repro.Report, bodies [][]byte, kill bool) (routerPhase, *killResult) {
	fmt.Fprintf(os.Stderr, "reproload: router phase, %d shard(s), rate cap %.0f rps each\n", n, cfg.shardRate)
	var shards []*fleetShard
	var urls []string
	for i := 0; i < n; i++ {
		fs, err := startFleetShard(cfg.shardRate)
		if err != nil {
			fatal(err)
		}
		shards = append(shards, fs)
		urls = append(urls, fs.url)
	}
	reg := obs.NewRegistry()
	rt := shard.New(shard.Config{Shards: urls, ProbeInterval: 200 * time.Millisecond, Metrics: reg})
	rt.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	rtSrv := &http.Server{Handler: rt.Handler()}
	go rtSrv.Serve(ln) //nolint:errcheck
	base := "http://" + ln.Addr().String()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns: cfg.clients * 2, MaxIdleConnsPerHost: cfg.clients * 2,
	}}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		rtSrv.Shutdown(ctx) //nolint:errcheck
		rt.Close()
		for _, fs := range shards {
			fs.stop()
		}
	}()

	// Warmup: one verified cold request per sequence through the
	// router. Retry on 429 — the cold engine run may exhaust a small
	// rate cap.
	answering := map[string]bool{}
	for i := range pool {
		for {
			resp, err := client.Post(base+"/v1/analyze", "application/json", bytes.NewReader(bodies[i]))
			if err != nil {
				fatal(fmt.Errorf("warmup %d: %w", i, err))
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				time.Sleep(20 * time.Millisecond)
				continue
			}
			if resp.StatusCode != http.StatusOK {
				fatal(fmt.Errorf("warmup %d: status %d: %.200s", i, resp.StatusCode, raw))
			}
			answering[resp.Header.Get("X-Router-Shard")] = true
			var sr serve.Response
			if err := json.Unmarshal(raw, &sr); err != nil {
				fatal(fmt.Errorf("warmup %d: %w", i, err))
			}
			rep, err := sr.DecodeReport()
			if err != nil || !sameAnalysis(truth[i], rep) {
				detail := fmt.Sprintf("decode err %v", err)
				if rep != nil {
					detail = fmt.Sprintf("cache=%s shard=%s tops %d vs %d, families %d vs %d",
						sr.Cache, resp.Header.Get("X-Router-Shard"),
						len(truth[i].Tops), len(rep.Tops), len(truth[i].Families), len(rep.Families))
				}
				fatal(fmt.Errorf("warmup %d: response via router diverges from the local sequential run (%s)", i, detail))
			}
			break
		}
	}

	// Open-loop load: the fleet's declared capacity is n*shardRate, and
	// each client paces requests so the aggregate offered load is 1.5x
	// that — enough headroom to prove the caps are the bottleneck
	// without a 429-retry storm that would burn the CPU the shards
	// need. (A closed-loop hammer would also let the router's
	// singleflight collapse retry herds of the same key, crediting one
	// admitted upstream call with many client completions and
	// distorting the scaling ratio.)
	offered := 1.5 * float64(n) * cfg.shardRate
	period := time.Duration(float64(cfg.clients) / offered * float64(time.Second))
	var (
		wg         sync.WaitGroup
		reqCount   atomic.Int64
		afterKill  atomic.Int64
		errCount   atomic.Int64
		shed429    atomic.Int64
		hitCount   atomic.Int64
		killedFlag atomic.Bool
		latMu      sync.Mutex
	)
	var lats []float64
	start := time.Now()
	stop := start.Add(cfg.duration)
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Stagger client phases so ticks do not thunder together.
			time.Sleep(time.Duration(c) * period / time.Duration(cfg.clients))
			tick := time.NewTicker(period)
			defer tick.Stop()
			var mine []float64
			for i := 0; time.Now().Before(stop); i++ {
				<-tick.C
				idx := (c + i*7) % len(pool)
				t0 := time.Now()
				resp, err := client.Post(base+"/v1/analyze", "application/json", bytes.NewReader(bodies[idx]))
				if err != nil {
					errCount.Add(1)
					fmt.Fprintf(os.Stderr, "reproload: router request failed: %v\n", err)
					continue
				}
				raw, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusTooManyRequests {
					shed429.Add(1) // over declared capacity: expected, not a failure
					continue
				}
				if resp.StatusCode != http.StatusOK || rerr != nil {
					errCount.Add(1)
					fmt.Fprintf(os.Stderr, "reproload: router status %d: %.200s\n", resp.StatusCode, raw)
					continue
				}
				var sr struct {
					Cache string `json:"cache"`
				}
				if json.Unmarshal(raw, &sr) == nil && sr.Cache == "hit" {
					hitCount.Add(1)
				}
				reqCount.Add(1)
				if killedFlag.Load() {
					afterKill.Add(1)
				}
				mine = append(mine, float64(time.Since(t0).Microseconds())/1e3)
			}
			latMu.Lock()
			lats = append(lats, mine...)
			latMu.Unlock()
		}(c)
	}

	var killRes *killResult
	if kill {
		killAt := cfg.duration / 2
		time.Sleep(killAt)
		shards[0].kill()
		killedFlag.Store(true)
		fmt.Fprintf(os.Stderr, "reproload: killed shard %s at %.1fs\n", shards[0].url, killAt.Seconds())
		killRes = &killResult{FleetSize: n, KilledAtS: killAt.Seconds()}
	}
	wg.Wait()

	if killRes != nil {
		killRes.RequestsAfterKill = afterKill.Load()
		killRes.Errors = errCount.Load()
		if snap, err := scrapeMetrics(client, base); err == nil {
			killRes.RingSizeAfter = snap.Gauges["router/ring_size"]
		}
	}

	elapsed := time.Since(start).Seconds()
	var hitRate float64
	if reqCount.Load() > 0 {
		hitRate = float64(hitCount.Load()) / float64(reqCount.Load())
	}
	phase := routerPhase{
		Shards:          n,
		Requests:        reqCount.Load(),
		Errors:          errCount.Load(),
		Shed429:         shed429.Load(),
		Throughput:      float64(reqCount.Load()) / elapsed,
		CacheHitRate:    hitRate,
		Latency:         summarise(lats),
		ShardsAnswering: len(answering),
	}
	if snap, err := scrapeMetrics(client, base); err == nil {
		phase.FlightShared = snap.Counters["router/flight_shared"]
	}
	fmt.Fprintf(os.Stderr,
		"reproload: %d shard(s): %d reqs (%.0f rps), %d errors, %d shed, hit rate %.2f\n",
		n, phase.Requests, phase.Throughput, phase.Errors, phase.Shed429, phase.CacheHitRate)
	return phase, killRes
}

// parseFleets parses "-router-compare 1,4" into fleet sizes.
func parseFleets(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad fleet size %q", part)
		}
		out = append(out, n)
	}
	if len(out) < 2 {
		return nil, fmt.Errorf("need at least two fleet sizes to compare")
	}
	sort.Ints(out)
	return out, nil
}
