package main

import (
	"net/http"
	"testing"
	"time"

	"repro"
	"repro/internal/seq"
)

// TestJobsPhaseAgainstSelf drives the real helpers end to end: an
// in-process durable server, the async-job phase (submit, dedup, poll,
// verify), and a metrics scrape.
func TestJobsPhaseAgainstSelf(t *testing.T) {
	addr, shutdown, err := startSelf(2, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	pool := []*seq.Sequence{seq.SyntheticTitin(120, 1), seq.SyntheticTitin(120, 2)}
	truth := make([]*repro.Report, len(pool))
	for i, q := range pool {
		truth[i], err = repro.Analyze(q.ID, q.String(), repro.Options{NumTops: 3})
		if err != nil {
			t.Fatal(err)
		}
	}

	client := &http.Client{}
	base := "http://" + addr
	done, _ := runJobsPhase(client, base, pool, truth, 3, "sequential", 4)
	if done != 4 {
		t.Fatalf("jobs done = %d, want 4", done)
	}
	snap, err := scrapeMetrics(client, base)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["serve/jobs_completed"] == 0 {
		t.Error("no completed jobs in the metrics snapshot")
	}
}

func TestSummarise(t *testing.T) {
	q := summarise([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if q.N != 10 || q.Mean != 5.5 || q.P50 != 5 || q.Max != 10 {
		t.Errorf("quantiles = %+v", q)
	}
	if z := summarise(nil); z.N != 0 {
		t.Errorf("empty quantiles = %+v", z)
	}
}

func TestSameAnalysis(t *testing.T) {
	q := seq.SyntheticTitin(100, 3)
	rep, err := repro.Analyze(q.ID, q.String(), repro.Options{NumTops: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !sameAnalysis(rep, rep) {
		t.Error("report does not match itself")
	}
	if sameAnalysis(rep, nil) {
		t.Error("nil report matched")
	}
	other := *rep
	other.SeqLen++
	if sameAnalysis(rep, &other) {
		t.Error("different SeqLen matched")
	}
}

func TestRetryAfterHeader(t *testing.T) {
	resp := &http.Response{Header: http.Header{}}
	if d := retryAfter(resp); d != 100*time.Millisecond {
		t.Errorf("default backoff = %v", d)
	}
	resp.Header.Set("Retry-After", "7")
	if d := retryAfter(resp); d != 250*time.Millisecond {
		t.Errorf("capped backoff = %v", d)
	}
}
