// Command reproload is a closed-loop load generator for reproserve: N
// concurrent clients hammer POST /v1/analyze over a pool of distinct
// sequences for a fixed duration, honouring 429 Retry-After
// backpressure, and the run is summarised as a machine-readable
// benchmark document (throughput, p50/p95/p99 latency, cache hit rate,
// cold-vs-hit latency ratio) for the serving performance trajectory
// (BENCH_PR3.json).
//
// Every response is differentially verified against a locally computed
// sequential analysis of the same sequence, so a run also asserts the
// serving layer returns bit-identical results to reprocli.
//
//	reproload -self -clients 64 -duration 10s -out BENCH_PR3.json
//	reproload -addr localhost:8080 -clients 32 -seqs 4 -len 600
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/atomicfile"
	"repro/internal/jobstore"
	"repro/internal/obs"
	"repro/internal/obs/profile"
	"repro/internal/seq"
	"repro/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "", "reproserve address (host:port); empty requires -self")
		self     = flag.Bool("self", false, "start an in-process server on an ephemeral port")
		clients  = flag.Int("clients", 64, "concurrent closed-loop clients")
		duration = flag.Duration("duration", 10*time.Second, "load duration")
		seqs     = flag.Int("seqs", 8, "distinct sequences in the request mix")
		length   = flag.Int("len", 500, "residues per synthetic sequence")
		tops     = flag.Int("tops", 10, "top alignments per request")
		backend  = flag.String("backend", "sequential", "backend: sequential, parallel, cluster")
		seed     = flag.Uint64("seed", 1, "sequence generator seed")
		verify   = flag.Bool("verify", true, "differentially verify every response against a local run")
		workers  = flag.Int("workers", 0, "(with -self) server worker pool size")
		queue    = flag.Int("queue", 0, "(with -self) server queue depth")
		jobsN    = flag.Int("jobs", 0, "exercise the async job API first: submit N durable jobs, poll to completion, verify")
		longLen  = flag.Int("long-len", 0, "long-input phase: analyse one synthetic sequence of this length with the prefilter preset end-to-end before the load phase (0 disables)")
		longPre  = flag.String("long-preset", "fast", "prefilter preset for the long-input phase: fast, balanced, sensitive")
		selfProf = flag.Bool("self-profile", false, "(with -self) run the continuous profiler in the in-process server, to measure its overhead")
		outP     = flag.String("out", "-", "output JSON path (- for stdout)")

		routerCmp = flag.String("router-compare", "", "router-scaling bench: comma-separated fleet sizes (e.g. 1,4); starts in-process shard fleets behind a router and emits a combined document")
		shardRate = flag.Float64("shard-rate", 100, "(router bench) per-shard rate cap in rps — the declared node capacity the scaling is measured against")
		killShard = flag.Bool("kill-shard", true, "(router bench) abruptly kill one shard halfway through the largest fleet's run and assert zero client-visible failures")
	)
	flag.Parse()

	if *routerCmp != "" {
		fleets, err := parseFleets(*routerCmp)
		if err != nil {
			fatal(err)
		}
		runRouterCompare(routerBenchConfig{
			fleets:    fleets,
			shardRate: *shardRate,
			clients:   *clients,
			duration:  *duration,
			seqs:      *seqs,
			length:    *length,
			tops:      *tops,
			seed:      *seed,
			killShard: *killShard,
			outPath:   *outP,
		})
		return
	}

	if *self {
		a, shutdown, err := startSelf(*workers, *queue, *selfProf)
		if err != nil {
			fatal(err)
		}
		defer shutdown()
		*addr = a
	}
	if *addr == "" {
		fatal(fmt.Errorf("need -addr or -self"))
	}

	// The request mix: seqs distinct synthetic titin-like proteins, so
	// the cache sees real repetition without degenerating to one key.
	pool := make([]*seq.Sequence, *seqs)
	for i := range pool {
		pool[i] = seq.SyntheticTitin(*length, *seed+uint64(i))
	}
	// Ground truth for differential verification: the strict
	// sequential engine, exactly what reprocli runs.
	var truth []*repro.Report
	if *verify {
		truth = make([]*repro.Report, *seqs)
		for i, q := range pool {
			rep, err := repro.Analyze(q.ID, q.String(), repro.Options{NumTops: *tops})
			if err != nil {
				fatal(fmt.Errorf("local truth run: %w", err))
			}
			truth[i] = rep
		}
	}

	tr := &http.Transport{MaxIdleConns: *clients * 2, MaxIdleConnsPerHost: *clients * 2}
	client := &http.Client{Transport: tr}
	base := "http://" + *addr

	// Async-job phase (before the cold warmup, so jobs take the cold
	// path): submit, poll to terminal state, verify against truth.
	var jobsDone, jobsDeduped int64
	if *jobsN > 0 {
		jobsDone, jobsDeduped = runJobsPhase(client, base, pool, truth, *tops, *backend, *jobsN)
	}

	// Long-input phase: one chromosome-scale sequence through the
	// seed-filter-extend preset, end to end over the API — asserting the
	// preset parameter reaches the engine, the response matches a local
	// prefilter run bit for bit, and a repeat request hits the cache
	// (the preset knobs are part of the content-addressed key).
	var longDoc *longResult
	if *longLen > 0 {
		longDoc = runLongPhase(client, base, *longLen, *longPre, *tops, *seed, *verify)
	}

	var (
		wg          sync.WaitGroup
		reqCount    atomic.Int64
		shed429     atomic.Int64
		errCount    atomic.Int64
		divergences atomic.Int64
		coldUsage   usageCollector
		loadUsage   usageCollector
	)
	type sample struct {
		ms    float64
		cache string
	}

	// Cold phase: one uncontended request per distinct sequence. This
	// measures the true engine-path latency (no queueing noise) and
	// warms the cache so the load phase measures the hit path.
	var coldSamples []sample
	for i, q := range pool {
		body, _ := json.Marshal(serve.Request{
			ID: q.ID, Sequence: q.String(),
			Params: serve.Params{Tops: *tops}, Backend: *backend,
			TimeoutMS: int((5 * time.Minute).Milliseconds()),
		})
		t0 := time.Now()
		resp, err := client.Post(base+"/v1/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			fatal(fmt.Errorf("cold request %d: %w", i, err))
		}
		raw, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || rerr != nil {
			fatal(fmt.Errorf("cold request %d: status %d: %.200s", i, resp.StatusCode, raw))
		}
		var sr serve.Response
		if err := json.Unmarshal(raw, &sr); err != nil {
			fatal(fmt.Errorf("cold request %d: %w", i, err))
		}
		coldSamples = append(coldSamples, sample{float64(time.Since(t0).Microseconds()) / 1e3, sr.Cache})
		coldUsage.observe(resp.Header)
		if *verify {
			rep, err := sr.DecodeReport()
			if err != nil || !sameAnalysis(truth[i], rep) {
				fatal(fmt.Errorf("cold response for sequence %d diverges from the local sequential run", i))
			}
		}
		fmt.Fprintf(os.Stderr, "reproload: warm %d/%d (%s, %.0fms)\n",
			i+1, len(pool), sr.Cache, coldSamples[i].ms)
	}

	// Precompute one request body per sequence: the client hot loop
	// competes with the server for the same CPUs, so per-iteration
	// marshalling would distort the measured hit latency.
	bodies := make([][]byte, len(pool))
	for i, q := range pool {
		bodies[i], _ = json.Marshal(serve.Request{
			ID: q.ID, Sequence: q.String(),
			Params: serve.Params{Tops: *tops}, Backend: *backend,
		})
	}

	perClient := make([][]sample, *clients)
	stop := time.Now().Add(*duration)

	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; time.Now().Before(stop); i++ {
				idx := (c + i) % len(pool)
				t0 := time.Now()
				resp, err := client.Post(base+"/v1/analyze", "application/json", bytes.NewReader(bodies[idx]))
				if err != nil {
					errCount.Add(1)
					continue
				}
				if resp.StatusCode == http.StatusTooManyRequests {
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
					shed429.Add(1)
					time.Sleep(retryAfter(resp))
					continue
				}
				raw, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				elapsed := time.Since(t0)
				if resp.StatusCode != http.StatusOK || rerr != nil {
					errCount.Add(1)
					fmt.Fprintf(os.Stderr, "reproload: status %d: %.200s\n", resp.StatusCode, raw)
					continue
				}
				// Decode the envelope only; the report payload is
				// unmarshalled just for verified samples.
				var sr struct {
					Cache  string          `json:"cache"`
					Report json.RawMessage `json:"report"`
				}
				if err := json.Unmarshal(raw, &sr); err != nil {
					errCount.Add(1)
					continue
				}
				reqCount.Add(1)
				loadUsage.observe(resp.Header)
				perClient[c] = append(perClient[c], sample{float64(elapsed.Microseconds()) / 1e3, sr.Cache})
				// Verify every non-hit plus a sample of hits: full
				// verification of every response would burn client CPU
				// the server needs (this is a single-machine bench).
				if *verify && (sr.Cache != "hit" || i%16 == 0) {
					var rep repro.Report
					if json.Unmarshal(sr.Report, &rep) != nil || !sameAnalysis(truth[idx], &rep) {
						divergences.Add(1)
					}
				}
			}
		}(c)
	}
	wg.Wait()

	// Merge and summarise. Cold samples come from the warmup pass
	// (uncontended engine-path latency) plus any load-phase misses;
	// hit samples only from the load phase, under full concurrency.
	var all, cold, hot []float64
	cacheCounts := map[string]int64{}
	for _, s := range coldSamples {
		if s.cache != "hit" {
			cold = append(cold, s.ms)
		}
	}
	for _, cs := range perClient {
		for _, s := range cs {
			all = append(all, s.ms)
			cacheCounts[s.cache]++
			switch s.cache {
			case "miss":
				cold = append(cold, s.ms)
			case "hit":
				hot = append(hot, s.ms)
			}
		}
	}
	n := reqCount.Load()
	hits := cacheCounts["hit"]
	doc := output{
		Bench:       "serve-loadgen",
		Clients:     *clients,
		DurationS:   duration.Seconds(),
		DistinctSeq: *seqs,
		SeqLen:      *length,
		Tops:        *tops,
		Backend:     *backend,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		GoVersion:   runtime.Version(),
		Requests:    n,
		Errors:      errCount.Load(),
		Shed429:     shed429.Load(),
		Throughput:  float64(n) / duration.Seconds(),
		Latency:     summarise(all),
		ColdLatency: summarise(cold),
		HitLatency:  summarise(hot),
		CacheHits:   hits,
		CacheMisses: cacheCounts["miss"],
		CacheShared: cacheCounts["shared"],
		Verified:    *verify,
		Divergences: divergences.Load(),
		JobsDone:    jobsDone,
		JobsDeduped: jobsDeduped,
		LongInput:   longDoc,
		Usage: map[string]*usageAgg{
			"cold": coldUsage.agg(),
			"load": loadUsage.agg(),
		},
	}
	if n > 0 {
		doc.CacheHitRate = float64(hits) / float64(n)
	}
	if doc.HitLatency.P50 > 0 {
		doc.ColdHitRatioP50 = doc.ColdLatency.P50 / doc.HitLatency.P50
	}
	if snap, err := scrapeMetrics(client, base); err == nil {
		doc.ServerQueueDepthMax = snap.Gauges["serve/queue_depth"]
		doc.ServerCacheEvictions = snap.Counters["cache/evictions"]
		doc.ServerEngineCells = snap.Counters["serve/engine_cells"]
	}

	fmt.Fprintf(os.Stderr,
		"reproload: %d reqs (%.0f rps), %d errors, %d shed, p50 %.2fms p99 %.2fms, hit rate %.2f, cold/hit %.0fx, divergences %d\n",
		n, doc.Throughput, doc.Errors, doc.Shed429,
		doc.Latency.P50, doc.Latency.P99, doc.CacheHitRate, doc.ColdHitRatioP50, doc.Divergences)

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *outP == "-" {
		os.Stdout.Write(enc) //nolint:errcheck
	} else if err := atomicfile.WriteFile(*outP, enc, 0o644); err != nil {
		fatal(err)
	}
	if doc.Divergences > 0 {
		fatal(fmt.Errorf("%d responses diverged from the local sequential run", doc.Divergences))
	}
	if doc.Errors > 0 {
		fatal(fmt.Errorf("%d requests failed", doc.Errors))
	}
}

// output is the benchmark document (BENCH_PR3.json schema).
type output struct {
	Bench       string  `json:"bench"`
	Clients     int     `json:"clients"`
	DurationS   float64 `json:"duration_s"`
	DistinctSeq int     `json:"distinct_seqs"`
	SeqLen      int     `json:"seq_len"`
	Tops        int     `json:"tops"`
	Backend     string  `json:"backend"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	GoVersion   string  `json:"go_version"`

	Requests   int64   `json:"requests"`
	Errors     int64   `json:"errors"`
	Shed429    int64   `json:"shed_429"`
	Throughput float64 `json:"throughput_rps"`

	Latency     quantiles `json:"latency_ms"`
	ColdLatency quantiles `json:"cold_latency_ms"`
	HitLatency  quantiles `json:"hit_latency_ms"`
	// ColdHitRatioP50 is the cache speedup: cold-path p50 over
	// cache-hit p50.
	ColdHitRatioP50 float64 `json:"cold_hit_ratio_p50"`

	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheShared  int64   `json:"cache_shared"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	Verified    bool  `json:"verified"`
	Divergences int64 `json:"divergences"`

	JobsDone    int64 `json:"jobs_done,omitempty"`
	JobsDeduped int64 `json:"jobs_deduped,omitempty"`

	LongInput *longResult `json:"long_input,omitempty"`

	// Usage carries per-phase resource attribution aggregates summed
	// from the X-Resource-* response headers, so bench files record
	// what the run cost, not just how long it took.
	Usage map[string]*usageAgg `json:"usage,omitempty"`

	ServerQueueDepthMax  int64 `json:"server_queue_depth_last"`
	ServerCacheEvictions int64 `json:"server_cache_evictions"`
	ServerEngineCells    int64 `json:"server_engine_cells"`
}

// usageAgg is one phase's summed resource attribution (the JSON shape).
type usageAgg struct {
	Requests   int64 `json:"requests"`
	Cells      int64 `json:"cells"`
	CPUNanos   int64 `json:"cpu_ns"`
	AllocBytes int64 `json:"alloc_bytes"`
}

// usageCollector accumulates X-Resource-* headers concurrently.
type usageCollector struct {
	reqs, cells, cpu, alloc atomic.Int64
}

func headerInt(h http.Header, name string) int64 {
	v := h.Get(name)
	if v == "" {
		return 0
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

func (c *usageCollector) observe(h http.Header) {
	c.reqs.Add(1)
	c.cells.Add(headerInt(h, "X-Resource-Cells"))
	c.cpu.Add(headerInt(h, "X-Resource-Cpu-Ns"))
	c.alloc.Add(headerInt(h, "X-Resource-Alloc-Bytes"))
}

func (c *usageCollector) agg() *usageAgg {
	return &usageAgg{
		Requests:   c.reqs.Load(),
		Cells:      c.cells.Load(),
		CPUNanos:   c.cpu.Load(),
		AllocBytes: c.alloc.Load(),
	}
}

type quantiles struct {
	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

func summarise(ms []float64) quantiles {
	if len(ms) == 0 {
		return quantiles{}
	}
	sort.Float64s(ms)
	var sum float64
	for _, v := range ms {
		sum += v
	}
	pick := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(ms)))) - 1
		if i < 0 {
			i = 0
		}
		return ms[i]
	}
	return quantiles{
		N: int64(len(ms)), Mean: sum / float64(len(ms)),
		P50: pick(0.50), P95: pick(0.95), P99: pick(0.99), Max: ms[len(ms)-1],
	}
}

// sameAnalysis compares the analysis content of two reports — tops and
// families, not engine stats (those legitimately differ across
// backends and cache hits).
func sameAnalysis(want, got *repro.Report) bool {
	if got == nil {
		return false
	}
	return want.SeqLen == got.SeqLen &&
		reflect.DeepEqual(want.Tops, got.Tops) &&
		reflect.DeepEqual(want.Families, got.Families)
}

func retryAfter(resp *http.Response) time.Duration {
	d := 100 * time.Millisecond
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			d = time.Duration(secs) * time.Second
		}
	}
	// A closed-loop bench run is short; cap the backoff so shed
	// clients rejoin within the measurement window.
	if d > 250*time.Millisecond {
		d = 250 * time.Millisecond
	}
	return d
}

// runJobsPhase drives the durable async API: n submissions round-robin
// over the sequence pool, polled to a terminal state and differentially
// verified like the synchronous responses. Identical in-flight
// submissions are expected to dedup into one job.
func runJobsPhase(client *http.Client, base string, pool []*seq.Sequence, truth []*repro.Report, tops int, backend string, n int) (done, deduped int64) {
	type pending struct {
		id  string
		idx int
	}
	var jobs []pending
	for i := 0; i < n; i++ {
		idx := i % len(pool)
		q := pool[idx]
		body, _ := json.Marshal(serve.Request{
			ID: q.ID, Sequence: q.String(),
			Params: serve.Params{Tops: tops}, Backend: backend,
		})
		resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			fatal(fmt.Errorf("job submit %d: %w", i, err))
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			fatal(fmt.Errorf("server has no job API; run reproserve with -data"))
		}
		if resp.StatusCode != http.StatusAccepted {
			fatal(fmt.Errorf("job submit %d: status %d: %.200s", i, resp.StatusCode, raw))
		}
		var st serve.JobStatus
		if err := json.Unmarshal(raw, &st); err != nil {
			fatal(fmt.Errorf("job submit %d: %w", i, err))
		}
		if st.Deduped {
			deduped++
		}
		jobs = append(jobs, pending{st.JobID, idx})
	}
	deadline := time.Now().Add(5 * time.Minute)
	for _, j := range jobs {
		for {
			if time.Now().After(deadline) {
				fatal(fmt.Errorf("job %s did not finish", j.id))
			}
			resp, err := client.Get(base + "/v1/jobs/" + j.id)
			if err != nil {
				fatal(fmt.Errorf("job poll %s: %w", j.id, err))
			}
			var st serve.JobStatus
			perr := json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if perr != nil {
				fatal(fmt.Errorf("job poll %s: %w", j.id, perr))
			}
			if st.State == "failed" {
				fatal(fmt.Errorf("job %s failed: %s", j.id, st.Error))
			}
			if st.State == "done" && len(st.Report) > 0 {
				var rep repro.Report
				if json.Unmarshal(st.Report, &rep) != nil || (truth != nil && !sameAnalysis(truth[j.idx], &rep)) {
					fatal(fmt.Errorf("job %s result diverges from the local sequential run", j.id))
				}
				done++
				break
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
	fmt.Fprintf(os.Stderr, "reproload: jobs %d submitted, %d deduped, %d verified done\n", n, deduped, done)
	return done, deduped
}

// longResult summarises the long-input phase.
type longResult struct {
	SeqLen      int     `json:"seq_len"`
	Preset      string  `json:"preset"`
	ColdMS      float64 `json:"cold_ms"`
	RepeatCache string  `json:"repeat_cache"`
	Tops        int     `json:"tops"`
	WindowCells int64   `json:"window_cells"`
	WindowShare float64 `json:"window_fraction"`
	Verified    bool    `json:"verified"`
}

// runLongPhase submits one long synthetic sequence with the prefilter
// preset, verifies the response against a local run with the same
// preset, and asserts a repeat request is served from the cache.
func runLongPhase(client *http.Client, base string, length int, preset string, tops int, seed uint64, verify bool) *longResult {
	q := seq.SyntheticTitin(length, seed+1000)
	body, _ := json.Marshal(serve.Request{
		ID: q.ID, Sequence: q.String(),
		Params:    serve.Params{Tops: tops, Preset: preset},
		TimeoutMS: int((5 * time.Minute).Milliseconds()),
	})
	post := func(label string) (*serve.Response, float64) {
		t0 := time.Now()
		resp, err := client.Post(base+"/v1/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			fatal(fmt.Errorf("long-input %s: %w", label, err))
		}
		raw, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || rerr != nil {
			fatal(fmt.Errorf("long-input %s: status %d: %.200s", label, resp.StatusCode, raw))
		}
		var sr serve.Response
		if err := json.Unmarshal(raw, &sr); err != nil {
			fatal(fmt.Errorf("long-input %s: %w", label, err))
		}
		return &sr, float64(time.Since(t0).Microseconds()) / 1e3
	}
	cold, coldMS := post("cold")
	rep, err := cold.DecodeReport()
	if err != nil {
		fatal(fmt.Errorf("long-input report: %w", err))
	}
	if rep.Prefilter == nil || rep.Prefilter.Preset != preset {
		fatal(fmt.Errorf("long-input response carries no prefilter telemetry for preset %q", preset))
	}
	res := &longResult{
		SeqLen: q.Len(), Preset: preset, ColdMS: coldMS,
		Tops: len(rep.Tops), WindowCells: rep.Prefilter.WindowCells,
	}
	if rep.Prefilter.SequenceCells > 0 {
		res.WindowShare = float64(rep.Prefilter.WindowCells) / float64(rep.Prefilter.SequenceCells)
	}
	if verify {
		truth, err := repro.Analyze(q.ID, q.String(), repro.Options{NumTops: tops, Preset: preset})
		if err != nil {
			fatal(fmt.Errorf("long-input local truth run: %w", err))
		}
		if !sameAnalysis(truth, rep) {
			fatal(fmt.Errorf("long-input response diverges from the local %s-preset run", preset))
		}
		res.Verified = true
	}
	repeat, _ := post("repeat")
	res.RepeatCache = repeat.Cache
	if repeat.Cache != "hit" {
		fatal(fmt.Errorf("long-input repeat request was %q, want cache hit", repeat.Cache))
	}
	fmt.Fprintf(os.Stderr, "reproload: long-input n=%d preset=%s cold %.0fms, %.2f%% of pair space, repeat %s\n",
		q.Len(), preset, coldMS, 100*res.WindowShare, repeat.Cache)
	return res
}

func scrapeMetrics(client *http.Client, base string) (*obs.Snapshot, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// startSelf runs an in-process reproserve on an ephemeral port, with
// the durable job API backed by a throwaway data dir so -jobs works
// without an external daemon. With profiled, the continuous profiler
// runs on a short cycle so a bench run measures its overhead.
func startSelf(workers, queue int, profiled bool) (addr string, shutdown func(), err error) {
	dataDir, err := os.MkdirTemp("", "reproload-data-*")
	if err != nil {
		return "", nil, err
	}
	jobs, err := jobstore.Open(filepath.Join(dataDir, "jobs"), nil)
	if err != nil {
		os.RemoveAll(dataDir) //nolint:errcheck
		return "", nil, err
	}
	reg := obs.NewRegistry()
	var prof *profile.Profiler
	if profiled {
		// Production duty cycle is 2s CPU out of 30s; a short bench
		// run needs captures to land sooner, so shrink both sides and
		// keep the ratio (250ms out of 4s ≈ 6%).
		prof, err = profile.New(profile.Config{
			Dir:         filepath.Join(dataDir, "profiles"),
			Interval:    4 * time.Second,
			CPUDuration: 250 * time.Millisecond,
			Metrics:     reg,
		})
		if err != nil {
			jobs.Close()          //nolint:errcheck
			os.RemoveAll(dataDir) //nolint:errcheck
			return "", nil, err
		}
		prof.Start()
	}
	srv := serve.New(serve.Config{
		Workers:    workers,
		QueueDepth: queue,
		Jobs:       jobs,
		Metrics:    reg,
		Journal:    obs.NewJournal(0),
		Profiles:   prof,
	})
	srv.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		prof.Close()
		jobs.Close()          //nolint:errcheck
		os.RemoveAll(dataDir) //nolint:errcheck
		return "", nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln) //nolint:errcheck
	shutdown = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx) //nolint:errcheck
		srv.Drain(ctx)        //nolint:errcheck
		prof.Close()
		jobs.Close()          //nolint:errcheck
		os.RemoveAll(dataDir) //nolint:errcheck
	}
	return ln.Addr().String(), shutdown, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reproload:", err)
	os.Exit(1)
}
