package main

import "testing"

func TestParseLengths(t *testing.T) {
	got, err := parseLengths("200, 300,400")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 200 || got[2] != 400 {
		t.Errorf("parseLengths = %v", got)
	}
	for _, bad := range []string{"", "abc", "200,100", "200,200", "5", "200,"} {
		if _, err := parseLengths(bad); err == nil {
			t.Errorf("parseLengths(%q) accepted", bad)
		}
	}
}
