// Command table1 regenerates Table 1 of the paper: run times of the old
// (O(n^4)) and new (O(n^3)) sequential top-alignment algorithms on
// prefixes of a titin-like protein, and the resulting speedups.
//
// The paper measures lengths 1000-1800 with 50 top alignments on a
// 1 GHz Pentium III; the old algorithm at those lengths takes hours, so
// the default here uses scaled lengths (the complexity gap, not the
// absolute numbers, is the reproduced result — see EXPERIMENTS.md).
// Pass -lengths/-tops to go bigger, and -kernel gotoh to time the
// exhaustive-realignment baseline with the fast per-cell kernel instead
// of the Equation-1 scan kernel.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/align"
	"repro/internal/oldalgo"
	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/topalign"
)

func main() {
	var (
		lengthsFlag = flag.String("lengths", "200,300,400,500,600", "comma-separated prefix lengths")
		tops        = flag.Int("tops", 10, "top alignments per run (paper: 50)")
		kernel      = flag.String("kernel", "naive", "old-algorithm kernel: naive (O(n^4)) or gotoh (O(tops*n^3))")
		seed        = flag.Uint64("seed", 1, "titin generator seed")
		skipOld     = flag.Bool("skip-old", false, "only time the new algorithm")
	)
	flag.Parse()

	var k oldalgo.Kernel
	switch *kernel {
	case "naive":
		k = oldalgo.KernelNaive
	case "gotoh":
		k = oldalgo.KernelGotoh
	default:
		fmt.Fprintln(os.Stderr, "table1: -kernel must be naive or gotoh")
		os.Exit(1)
	}

	lengths, err := parseLengths(*lengthsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}
	maxLen := lengths[len(lengths)-1]
	titin := seq.SyntheticTitin(maxLen, *seed)
	params := align.Params{Exch: scoring.BLOSUM62, Gap: scoring.DefaultProteinGap}

	fmt.Printf("Table 1: old vs new sequential algorithm, %d top alignments, titin-like prefixes\n", *tops)
	fmt.Printf("(old kernel: %s; paper columns: length, old(s), new(s), speedup)\n\n", k)
	fmt.Printf("%8s %12s %12s %10s\n", "length", "old (s)", "new (s)", "speedup")

	for _, n := range lengths {
		prefix := titin.Codes[:n]

		t0 := time.Now()
		newRes, err := topalign.Find(prefix, topalign.Config{Params: params, NumTops: *tops})
		if err != nil {
			fmt.Fprintln(os.Stderr, "table1: new:", err)
			os.Exit(1)
		}
		newSec := time.Since(t0).Seconds()

		if *skipOld {
			fmt.Printf("%8d %12s %12.3f %10s\n", n, "-", newSec, "-")
			continue
		}
		t0 = time.Now()
		oldRes, err := oldalgo.Find(prefix, oldalgo.Config{Params: params, NumTops: *tops, Kernel: k})
		if err != nil {
			fmt.Fprintln(os.Stderr, "table1: old:", err)
			os.Exit(1)
		}
		oldSec := time.Since(t0).Seconds()

		if len(oldRes.Tops) != len(newRes.Tops) {
			fmt.Fprintf(os.Stderr, "table1: result mismatch at n=%d (%d vs %d tops)\n",
				n, len(oldRes.Tops), len(newRes.Tops))
			os.Exit(1)
		}
		for i := range newRes.Tops {
			if oldRes.Tops[i].Score != newRes.Tops[i].Score {
				fmt.Fprintf(os.Stderr, "table1: score mismatch at n=%d top %d\n", n, i+1)
				os.Exit(1)
			}
		}
		fmt.Printf("%8d %12.3f %12.3f %10.1f\n", n, oldSec, newSec, oldSec/newSec)
	}
	fmt.Println("\n(old and new algorithms verified to produce identical top alignments)")
}

func parseLengths(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	prev := 0
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 10 {
			return nil, fmt.Errorf("bad length %q", p)
		}
		if n <= prev {
			return nil, fmt.Errorf("lengths must be increasing")
		}
		prev = n
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no lengths given")
	}
	return out, nil
}
