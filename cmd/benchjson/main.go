// Command benchjson runs the seeded titin workload at each of the
// paper's parallelism levels and emits a machine-readable benchmark
// document on stdout (or atomically to -out): wall time, matrix cells
// computed, cells per second (the SSW library's canonical
// alignment-throughput metric), alignment counts, and the speculation
// overhead of the parallel scheduler (paper Section 5.2 measures up to
// 8.4%). The committed trajectory files (BENCH_PR*.json) are produced
// with an explicit -out; output files are written via temp-file +
// rename, so an interrupted run can never leave a truncated document.
//
//	benchjson -len 1200 -tops 15 -out BENCH_PR2.json
//	benchjson -short -out /tmp/smoke.json   (CI smoke run)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/align"
	"repro/internal/atomicfile"
	"repro/internal/cluster"
	"repro/internal/parallel"
	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/stats"
	"repro/internal/topalign"
)

// Level is one benchmark row.
type Level struct {
	Name        string  `json:"name"`
	Workers     int     `json:"workers"`
	Lanes       int     `json:"lanes,omitempty"`
	Slaves      int     `json:"slaves,omitempty"`
	Tops        int     `json:"tops"`
	WallSeconds float64 `json:"wall_s"`
	Cells       int64   `json:"cells"`
	CellsPerSec float64 `json:"cells_per_sec"`
	Alignments  int64   `json:"alignments"`
	Tracebacks  int64   `json:"tracebacks"`
	MeanAlignNS int64   `json:"mean_align_ns"`
	Speedup     float64 `json:"speedup_vs_sequential"`
}

// Output is the whole benchmark document.
type Output struct {
	Bench               string  `json:"bench"`
	SeqLen              int     `json:"seq_len"`
	Seed                uint64  `json:"seed"`
	Tops                int     `json:"tops"`
	GOMAXPROCS          int     `json:"gomaxprocs"`
	GoVersion           string  `json:"go_version"`
	Levels              []Level `json:"levels"`
	SpeculationOverhead float64 `json:"speculation_overhead"`
}

func main() {
	var (
		length = flag.Int("len", 1200, "synthetic titin length (residues)")
		tops   = flag.Int("tops", 15, "top alignments per run")
		seed   = flag.Uint64("seed", 1, "titin generator seed")
		outP   = flag.String("out", "-", "output JSON path (- for stdout; files are written atomically)")
		short  = flag.Bool("short", false, "small workload for CI smoke runs")
	)
	flag.Parse()
	if *short {
		*length, *tops = 300, 6
	}

	q := seq.SyntheticTitin(*length, *seed)
	params := align.Params{Exch: scoring.BLOSUM62, Gap: scoring.DefaultProteinGap}
	base := topalign.Config{Params: params, NumTops: *tops}
	// Floor at 4 so the speculative scheduler is exercised (and its
	// overhead measurable) even on single-CPU CI runners.
	workers := max(runtime.GOMAXPROCS(0), 4)

	type runner struct {
		level Level
		run   func(topalign.Config) (*topalign.Result, error)
	}
	runners := []runner{
		{Level{Name: "sequential", Workers: 1}, func(cfg topalign.Config) (*topalign.Result, error) {
			return topalign.Find(q.Codes, cfg)
		}},
		{Level{Name: "swar-group", Workers: 1, Lanes: 8}, func(cfg topalign.Config) (*topalign.Result, error) {
			cfg.GroupLanes = 8
			return topalign.Find(q.Codes, cfg)
		}},
		{Level{Name: "shared-memory", Workers: workers}, func(cfg topalign.Config) (*topalign.Result, error) {
			return parallel.Find(q.Codes, cfg, parallel.Config{Workers: workers, Speculative: true})
		}},
		{Level{Name: "cluster", Workers: 4, Slaves: 2}, func(cfg topalign.Config) (*topalign.Result, error) {
			return cluster.RunLocal(q.Codes,
				cluster.Config{Top: cfg, Speculative: true},
				cluster.LocalSpec{Slaves: 2, ThreadsPerSlave: 2})
		}},
	}

	out := Output{
		Bench:      "titin-toplevel",
		SeqLen:     q.Len(),
		Seed:       *seed,
		Tops:       *tops,
		GOMAXPROCS: workers,
		GoVersion:  runtime.Version(),
	}
	var seqWall float64
	var seqAlignments int64
	for _, r := range runners {
		cfg := base
		cfg.Counters = &stats.Counters{}
		t0 := time.Now()
		res, err := r.run(cfg)
		wall := time.Since(t0).Seconds()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", r.level.Name, err))
		}
		snap := cfg.Counters.Snapshot()
		lv := r.level
		lv.Tops = len(res.Tops)
		lv.WallSeconds = wall
		lv.Cells = snap.Cells
		lv.CellsPerSec = float64(snap.Cells) / wall
		lv.Alignments = snap.Alignments
		lv.Tracebacks = snap.Tracebacks
		lv.MeanAlignNS = int64(snap.AlignLatency.Mean())
		if lv.Name == "sequential" {
			seqWall, seqAlignments = wall, snap.Alignments
		}
		if seqWall > 0 {
			lv.Speedup = seqWall / wall
		}
		fmt.Fprintf(os.Stderr, "benchjson: %-13s %6.2fs  %8.0f kcells/s  %d alignments\n",
			lv.Name, wall, lv.CellsPerSec/1e3, lv.Alignments)
		out.Levels = append(out.Levels, lv)
		if lv.Name == "shared-memory" && seqAlignments > 0 {
			out.SpeculationOverhead = float64(lv.Alignments-seqAlignments) / float64(seqAlignments)
		}
	}

	doc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fatal(err)
	}
	doc = append(doc, '\n')
	if *outP == "-" {
		os.Stdout.Write(doc) //nolint:errcheck
		return
	}
	if err := atomicfile.WriteFile(*outP, doc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s\n", *outP)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
