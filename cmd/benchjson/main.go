// Command benchjson runs the seeded titin workload at each of the
// paper's parallelism levels and emits a machine-readable benchmark
// document on stdout (or atomically to -out): wall time, matrix cells
// computed, cells per second (the SSW library's canonical
// alignment-throughput metric), alignment counts, heap allocations per
// alignment, and the speculation overhead of the parallel scheduler
// (paper Section 5.2 measures up to 8.4%). The committed trajectory
// files (BENCH_PR*.json) are produced with an explicit -out; output
// files are written via temp-file + rename, so an interrupted run can
// never leave a truncated document.
//
// Two shared-memory rows are reported: the scalar scheduler and the
// composed configuration (workers x 8-lane groups), the paper's level
// composition. With -baseline the document embeds a per-level
// comparison against an earlier benchjson output, and the assertion
// flags turn the run into a CI gate:
//
//	benchjson -len 1200 -tops 15 -baseline BENCH_PR2.json -out BENCH_PR4.json
//	benchjson -short -min-speedup-shared 1.5 -max-allocs-per-align 64 \
//	          -cpuprofile bench.pprof -out /tmp/smoke.json   (CI smoke run)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/align"
	"repro/internal/atomicfile"
	"repro/internal/cluster"
	"repro/internal/multialign"
	"repro/internal/parallel"
	"repro/internal/scoring"
	"repro/internal/seedindex"
	"repro/internal/seq"
	"repro/internal/stats"
	"repro/internal/topalign"
)

// Level is one benchmark row.
type Level struct {
	Name    string `json:"name"`
	Workers int    `json:"workers"`
	Lanes   int    `json:"lanes,omitempty"`
	// KernelTier names the group-kernel tier the level's lane count and
	// scoring model resolve to ("scalar", "int32x8", "int16x16"),
	// honouring any -kernel-tier override.
	KernelTier  string  `json:"kernel_tier,omitempty"`
	Slaves      int     `json:"slaves,omitempty"`
	Tops        int     `json:"tops"`
	WallSeconds float64 `json:"wall_s"`
	Cells       int64   `json:"cells"`
	CellsPerSec float64 `json:"cells_per_sec"`
	Alignments  int64   `json:"alignments"`
	Tracebacks  int64   `json:"tracebacks"`
	MeanAlignNS int64   `json:"mean_align_ns"`
	// Mallocs is the process-wide heap-object count attributable to
	// this level's run; AllocsPerAlign divides it by the alignment
	// count. Scheduler bookkeeping and (for the cluster level) message
	// codecs are included, so the figure is an upper bound on kernel
	// allocations.
	Mallocs        int64   `json:"mallocs"`
	AllocsPerAlign float64 `json:"allocs_per_align"`
	Speedup        float64 `json:"speedup_vs_sequential"`
	// BaselineWallS / WallVsBaseline are present when -baseline names a
	// previous document containing a level with the same name.
	BaselineWallS  float64 `json:"baseline_wall_s,omitempty"`
	WallVsBaseline float64 `json:"wall_vs_baseline,omitempty"`
}

// PrefilterRow is one seed-filter-extend measurement at one scale.
type PrefilterRow struct {
	Preset      string  `json:"preset"`
	SeqLen      int     `json:"seq_len"`
	WallSeconds float64 `json:"wall_s"`
	Cells       int64   `json:"cells"`
	CellsPerSec float64 `json:"cells_per_sec"`
	// WindowFraction is the candidate window area over the full pair
	// space — the share of the matrix the prefilter even looks at.
	WindowFraction float64 `json:"window_fraction"`
	Candidates     int     `json:"candidates"`
	Tops           int     `json:"tops"`
	// ExactWallS extrapolates the sequential full engine to this length
	// by the cubic law from the calibration run; FractionOfExact is the
	// headline ratio (the acceptance gate asks for < 0.05 at 50x).
	ExactWallS      float64 `json:"extrapolated_exact_wall_s"`
	FractionOfExact float64 `json:"fraction_of_exact"`
	// Recall is the score recall against the measured exact run; only
	// present at the calibration length, where exact is affordable.
	Recall float64 `json:"recall_vs_exact,omitempty"`
}

// PrefilterSection carries the prefilter rows plus the calibration the
// extrapolation is anchored to.
type PrefilterSection struct {
	CalibrationLen   int            `json:"calibration_len"`
	CalibrationWallS float64        `json:"calibration_exact_wall_s"`
	Rows             []PrefilterRow `json:"rows"`
}

// KernelRow is one raw group-kernel measurement: back-to-back
// ScoreGroupAuto calls on one goroutine with the tier forced, so the
// figure is pure kernel throughput with no scheduler or traceback
// overhead (the paper's Gcells/s framing).
type KernelRow struct {
	Tier        string  `json:"tier"`
	Lanes       int     `json:"lanes"`
	WallSeconds float64 `json:"wall_s"`
	Cells       int64   `json:"cells"`
	CellsPerSec float64 `json:"cells_per_sec"`
	// VsInt32 is this tier's throughput over the int32x8 tier's (present
	// once both have run), the headline per-core ratio of the int16 tier.
	VsInt32 float64 `json:"vs_int32x8,omitempty"`
}

// KernelSection carries the per-tier raw kernel rows.
type KernelSection struct {
	SeqLen int         `json:"seq_len"`
	Rows   []KernelRow `json:"rows"`
}

// Output is the whole benchmark document.
type Output struct {
	Bench      string `json:"bench"`
	SeqLen     int    `json:"seq_len"`
	Seed       uint64 `json:"seed"`
	Tops       int    `json:"tops"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	// DetectedKernelTier is the widest group-kernel tier this CPU
	// supports; ForcedKernelTier echoes a -kernel-tier override.
	DetectedKernelTier  string            `json:"detected_kernel_tier"`
	ForcedKernelTier    string            `json:"forced_kernel_tier,omitempty"`
	AVX512              bool              `json:"avx512_detected"`
	Baseline            string            `json:"baseline,omitempty"`
	Levels              []Level           `json:"levels"`
	SpeculationOverhead float64           `json:"speculation_overhead"`
	Kernels             *KernelSection    `json:"kernels,omitempty"`
	Prefilter           *PrefilterSection `json:"prefilter,omitempty"`
}

func main() {
	var (
		length   = flag.Int("len", 1200, "synthetic titin length (residues)")
		tops     = flag.Int("tops", 15, "top alignments per run")
		seed     = flag.Uint64("seed", 1, "titin generator seed")
		outP     = flag.String("out", "-", "output JSON path (- for stdout; files are written atomically)")
		short    = flag.Bool("short", false, "small workload for CI smoke runs")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile covering every level to this file")
		baseline = flag.String("baseline", "", "previous benchjson output to compare against (missing file is an error)")

		minSpeedupShared = flag.Float64("min-speedup-shared", 0,
			"fail unless the best shared-memory level reaches this speedup vs sequential (0 disables)")
		maxAllocsPerAlign = flag.Float64("max-allocs-per-align", 0,
			"fail if a single-process level exceeds this many heap allocations per alignment (0 disables)")
		prefilter = flag.Bool("prefilter", false,
			"also benchmark the seed-filter-extend prefilter at 10x and 50x scale")
		maxPrefilterFraction = flag.Float64("max-prefilter-fraction", 0,
			"fail if a scaled prefilter run exceeds this fraction of the extrapolated exact wall time (0 disables)")
		kernelTier = flag.String("kernel-tier", "",
			"force a group-kernel tier for every level: scalar, int32x8, int16x16 (default auto)")
		kernels = flag.Bool("kernels", false,
			"also measure raw per-tier group-kernel throughput (single core, scheduler excluded)")
		minKernelRatio = flag.Float64("min-kernel-ratio", 0,
			"with -kernels: fail unless the int16x16 tier beats int32x8 per-core by this factor (0 disables; skipped with a warning when the CPU lacks the tier)")
	)
	flag.Parse()
	if *short {
		*length, *tops = 300, 6
	}
	if err := multialign.SetKernelTier(*kernelTier); err != nil {
		fatal(err)
	}

	stopProf := func() {}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		// Stopped explicitly before any exit path: fatal uses os.Exit,
		// which would skip a defer and truncate the profile.
		stopProf = func() {
			pprof.StopCPUProfile()
			f.Close() //nolint:errcheck
		}
	}

	q := seq.SyntheticTitin(*length, *seed)
	params := align.Params{Exch: scoring.BLOSUM62, Gap: scoring.DefaultProteinGap}
	base := topalign.Config{Params: params, NumTops: *tops}
	// Floor at 4 so the speculative scheduler is exercised (and its
	// overhead measurable) even on single-CPU CI runners.
	workers := max(runtime.GOMAXPROCS(0), 4)

	type runner struct {
		level Level
		run   func(topalign.Config) (*topalign.Result, error)
	}
	runners := []runner{
		{Level{Name: "sequential", Workers: 1}, func(cfg topalign.Config) (*topalign.Result, error) {
			return topalign.Find(q.Codes, cfg)
		}},
		{Level{Name: "swar-group", Workers: 1, Lanes: 8}, func(cfg topalign.Config) (*topalign.Result, error) {
			cfg.GroupLanes = 8
			return topalign.Find(q.Codes, cfg)
		}},
		{Level{Name: "group16", Workers: 1, Lanes: 16}, func(cfg topalign.Config) (*topalign.Result, error) {
			// 16-lane groups route through the int16x16 tier where the
			// CPU and scoring model allow it (see kernel_tier per level).
			cfg.GroupLanes = 16
			return topalign.Find(q.Codes, cfg)
		}},
		{Level{Name: "shared-memory", Workers: workers}, func(cfg topalign.Config) (*topalign.Result, error) {
			return parallel.Find(q.Codes, cfg, parallel.Config{Workers: workers, Speculative: true})
		}},
		{Level{Name: "shared-memory-group", Workers: workers, Lanes: 8}, func(cfg topalign.Config) (*topalign.Result, error) {
			// The composed configuration: every worker realigns 8-lane
			// groups, so kernel throughput and thread parallelism stack.
			cfg.GroupLanes = 8
			return parallel.Find(q.Codes, cfg, parallel.Config{Workers: workers, Speculative: true})
		}},
		{Level{Name: "shared-memory-group16", Workers: workers, Lanes: 16}, func(cfg topalign.Config) (*topalign.Result, error) {
			cfg.GroupLanes = 16
			return parallel.Find(q.Codes, cfg, parallel.Config{Workers: workers, Speculative: true})
		}},
		{Level{Name: "cluster", Workers: 4, Slaves: 2}, func(cfg topalign.Config) (*topalign.Result, error) {
			return cluster.RunLocal(q.Codes,
				cluster.Config{Top: cfg, Speculative: true},
				cluster.LocalSpec{Slaves: 2, ThreadsPerSlave: 2})
		}},
	}

	out := Output{
		Bench:              "titin-toplevel",
		SeqLen:             q.Len(),
		Seed:               *seed,
		Tops:               *tops,
		GOMAXPROCS:         workers,
		GoVersion:          runtime.Version(),
		DetectedKernelTier: multialign.DetectedTier().String(),
		ForcedKernelTier:   *kernelTier,
		AVX512:             multialign.DetectedAVX512(),
	}
	base2wall := map[string]float64{}
	if *baseline != "" {
		prev, err := loadBaseline(*baseline)
		if err != nil {
			fatal(err)
		}
		out.Baseline = *baseline
		for _, lv := range prev.Levels {
			base2wall[lv.Name] = lv.WallSeconds
		}
	}

	var seqWall float64
	var seqAlignments int64
	var seqRes *topalign.Result
	var ms0, ms1 runtime.MemStats
	for _, r := range runners {
		cfg := base
		cfg.Counters = &stats.Counters{}
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		res, err := r.run(cfg)
		wall := time.Since(t0).Seconds()
		runtime.ReadMemStats(&ms1)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", r.level.Name, err))
		}
		snap := cfg.Counters.Snapshot()
		lv := r.level
		if lv.Lanes > 0 {
			lv.KernelTier = multialign.TierFor(params, q.Len(), lv.Lanes).String()
		}
		lv.Tops = len(res.Tops)
		lv.WallSeconds = wall
		lv.Cells = snap.Cells
		lv.CellsPerSec = float64(snap.Cells) / wall
		lv.Alignments = snap.Alignments
		lv.Tracebacks = snap.Tracebacks
		lv.MeanAlignNS = int64(snap.AlignLatency.Mean())
		lv.Mallocs = int64(ms1.Mallocs - ms0.Mallocs)
		if snap.Alignments > 0 {
			lv.AllocsPerAlign = float64(lv.Mallocs) / float64(snap.Alignments)
		}
		if lv.Name == "sequential" {
			seqWall, seqAlignments, seqRes = wall, snap.Alignments, res
		}
		if seqWall > 0 {
			lv.Speedup = seqWall / wall
		}
		if bw, ok := base2wall[lv.Name]; ok && wall > 0 {
			lv.BaselineWallS = bw
			lv.WallVsBaseline = bw / wall
		}
		fmt.Fprintf(os.Stderr, "benchjson: %-19s %6.2fs  %8.0f kcells/s  %5d alignments  %6.1f allocs/align\n",
			lv.Name, wall, lv.CellsPerSec/1e3, lv.Alignments, lv.AllocsPerAlign)
		out.Levels = append(out.Levels, lv)
		if lv.Name == "shared-memory" && seqAlignments > 0 {
			out.SpeculationOverhead = float64(lv.Alignments-seqAlignments) / float64(seqAlignments)
		}
	}

	if *kernels {
		sec, err := runKernels(q, params, *kernelTier)
		if err != nil {
			stopProf()
			writeDoc(out, *outP)
			fatal(err)
		}
		out.Kernels = sec
	}

	if *prefilter {
		sec, err := runPrefilter(q, base, seqWall, seqRes, *seed, *short)
		if err != nil {
			stopProf()
			writeDoc(out, *outP)
			fatal(err)
		}
		out.Prefilter = sec
	}

	stopProf()
	if err := assertKernelRatio(out.Kernels, *minKernelRatio); err != nil {
		writeDoc(out, *outP)
		fatal(err)
	}
	if err := assertBudgets(out, *minSpeedupShared, *maxAllocsPerAlign, *maxPrefilterFraction); err != nil {
		// Still write the document so CI can upload it for inspection.
		writeDoc(out, *outP)
		fatal(err)
	}
	writeDoc(out, *outP)
}

// groupCells is the lane-cell count one group call computes from split
// r0: lane k covers rows 1..r0+k over m-(r0+k) columns.
func groupCells(m, r0, lanes int) int64 {
	var cells int64
	for k := 0; k < lanes; k++ {
		r := r0 + k
		if r > m-1 {
			break
		}
		cells += int64(r) * int64(m-r)
	}
	return cells
}

// runKernels measures raw per-tier group-kernel throughput: one
// goroutine scoring the same mid-sequence group back to back with the
// tier forced, for at least 0.5s per tier. Tiers the CPU lacks are
// skipped. The caller's -kernel-tier override is restored on return.
//
// The section uses its own sequence of at least 1200 residues even
// under -short: kernel throughput is a property of the kernel, not the
// workload, and groups from tiny sequences spend their time in row
// prologues rather than the steady-state inner loop, which would
// understate the wide tiers and destabilise the -min-kernel-ratio gate.
func runKernels(q *seq.Sequence, params align.Params, restore string) (*KernelSection, error) {
	if q.Len() < 1200 {
		q = seq.SyntheticTitin(1200, 1)
	}
	sec := &KernelSection{SeqLen: q.Len()}
	r0 := q.Len() / 2
	sc := multialign.NewScratch()
	defer multialign.SetKernelTier(restore) //nolint:errcheck // restoring a value that parsed at startup
	var int32Rate float64
	for _, t := range []struct {
		tier  multialign.Tier
		lanes int
	}{
		{multialign.TierScalar, 8},
		{multialign.TierInt32x8, 8},
		{multialign.TierInt16x16, 16},
	} {
		if t.tier > multialign.DetectedTier() {
			fmt.Fprintf(os.Stderr, "benchjson: kernels: tier %s not supported on this CPU, skipping\n", t.tier)
			continue
		}
		if err := multialign.SetKernelTier(t.tier.String()); err != nil {
			return nil, err
		}
		perCall := groupCells(q.Len(), r0, t.lanes)
		var cells int64
		var wall float64
		t0 := time.Now()
		for wall < 0.5 {
			g, err := sc.ScoreGroupAuto(params, q.Codes, r0, t.lanes, nil)
			if err != nil {
				return nil, fmt.Errorf("kernels %s: %w", t.tier, err)
			}
			if g.Rerun {
				return nil, fmt.Errorf("kernels %s: benchmark input saturated the int16 kernel", t.tier)
			}
			cells += perCall
			wall = time.Since(t0).Seconds()
		}
		row := KernelRow{
			Tier:        t.tier.String(),
			Lanes:       t.lanes,
			WallSeconds: wall,
			Cells:       cells,
			CellsPerSec: float64(cells) / wall,
		}
		if t.tier == multialign.TierInt32x8 {
			int32Rate = row.CellsPerSec
		} else if int32Rate > 0 {
			row.VsInt32 = row.CellsPerSec / int32Rate
		}
		fmt.Fprintf(os.Stderr, "benchjson: kernel %-9s %6.2f Gcells/s (x%d lanes)\n",
			row.Tier, row.CellsPerSec/1e9, row.Lanes)
		sec.Rows = append(sec.Rows, row)
	}
	return sec, nil
}

// assertKernelRatio enforces the int16-vs-int32 per-core gate on a
// -kernels section. When the CPU lacks the int16 tier the gate is
// skipped with a warning rather than failed: the differential suite
// still covers correctness there, and CI runners without AVX2 should
// not go red over a tier they cannot run.
func assertKernelRatio(sec *KernelSection, minRatio float64) error {
	if minRatio <= 0 || sec == nil {
		return nil
	}
	if multialign.DetectedTier() < multialign.TierInt16x16 {
		fmt.Fprintf(os.Stderr, "benchjson: kernels: int16x16 tier unavailable (detected %s), skipping -min-kernel-ratio gate\n",
			multialign.DetectedTier())
		return nil
	}
	var int16Row, int32Row *KernelRow
	for i := range sec.Rows {
		switch sec.Rows[i].Tier {
		case "int16x16":
			int16Row = &sec.Rows[i]
		case "int32x8":
			int32Row = &sec.Rows[i]
		}
	}
	if int16Row == nil || int32Row == nil {
		return fmt.Errorf("kernels: -min-kernel-ratio needs both int32x8 and int16x16 rows")
	}
	if ratio := int16Row.CellsPerSec / int32Row.CellsPerSec; ratio < minRatio {
		return fmt.Errorf("kernels: int16x16 is %.2fx int32x8 per core, below required %.2fx", ratio, minRatio)
	}
	return nil
}

// runPrefilter benchmarks the fast and balanced presets at 10x and 50x
// the calibration length (2x and 4x under -short), extrapolating the
// exact engine's wall time to each scale by the cubic law anchored at
// the measured sequential calibration run, and measuring score recall at
// the calibration length where the exact result is available.
func runPrefilter(q *seq.Sequence, base topalign.Config, seqWall float64, seqRes *topalign.Result, seed uint64, short bool) (*PrefilterSection, error) {
	sec := &PrefilterSection{CalibrationLen: q.Len(), CalibrationWallS: seqWall}
	letters := seq.PrimaryLetters(q.Alpha)
	sum := func(res *topalign.Result) float64 {
		var s float64
		for _, top := range res.Tops {
			s += float64(top.Score)
		}
		return s
	}
	scales := []int{1, 10, 50}
	if short {
		scales = []int{1, 2, 4}
	}
	for _, scale := range scales {
		qs := q
		if scale > 1 {
			qs = seq.SyntheticTitin(q.Len()*scale, seed)
		}
		for _, preset := range []string{seedindex.PresetFast, seedindex.PresetBalanced} {
			pcfg, err := seedindex.PresetConfig(preset, letters)
			if err != nil {
				return nil, err
			}
			cfg := base
			cfg.Counters = &stats.Counters{}
			t0 := time.Now()
			res, pst, err := seedindex.Find(qs.Codes, pcfg, cfg)
			wall := time.Since(t0).Seconds()
			if err != nil {
				return nil, fmt.Errorf("prefilter %s at %d: %w", preset, qs.Len(), err)
			}
			snap := cfg.Counters.Snapshot()
			ratio := float64(qs.Len()) / float64(q.Len())
			row := PrefilterRow{
				Preset:      preset,
				SeqLen:      qs.Len(),
				WallSeconds: wall,
				Cells:       snap.Cells,
				CellsPerSec: float64(snap.Cells) / wall,
				Candidates:  pst.Candidates,
				Tops:        len(res.Tops),
				ExactWallS:  seqWall * ratio * ratio * ratio,
			}
			if pst.SequenceCells > 0 {
				row.WindowFraction = float64(pst.WindowCells) / float64(pst.SequenceCells)
			}
			if row.ExactWallS > 0 {
				row.FractionOfExact = wall / row.ExactWallS
			}
			if scale == 1 && seqRes != nil {
				if exact := sum(seqRes); exact > 0 {
					row.Recall = sum(res) / exact
				}
			}
			fmt.Fprintf(os.Stderr, "benchjson: prefilter %-8s n=%-6d %6.2fs  %5.2f%% of pair space  %.4f of exact  tops=%d\n",
				row.Preset, row.SeqLen, wall, 100*row.WindowFraction, row.FractionOfExact, row.Tops)
			sec.Rows = append(sec.Rows, row)
		}
	}
	return sec, nil
}

// assertBudgets enforces the CI perf gates: the best shared-memory
// level's speedup vs sequential, and a heap-allocation budget per
// alignment on the single-process levels (the cluster level is exempt:
// its message codecs allocate by design).
func assertBudgets(out Output, minSpeedup, maxAllocs, maxPrefFrac float64) error {
	if minSpeedup > 0 {
		best := 0.0
		for _, lv := range out.Levels {
			if (lv.Name == "shared-memory" || lv.Name == "shared-memory-group") && lv.Speedup > best {
				best = lv.Speedup
			}
		}
		if best < minSpeedup {
			return fmt.Errorf("shared-memory speedup %.2fx below required %.2fx", best, minSpeedup)
		}
	}
	if maxAllocs > 0 {
		for _, lv := range out.Levels {
			if lv.Name == "cluster" {
				continue
			}
			if lv.AllocsPerAlign > maxAllocs {
				return fmt.Errorf("%s: %.1f allocs/alignment exceeds budget %.1f",
					lv.Name, lv.AllocsPerAlign, maxAllocs)
			}
		}
	}
	if maxPrefFrac > 0 && out.Prefilter != nil {
		for _, row := range out.Prefilter.Rows {
			// The gate covers the scaled rows; at the calibration length
			// itself the windows overlap heavily and the fraction is not
			// the figure of merit (recall is).
			if row.SeqLen > out.SeqLen && row.FractionOfExact > maxPrefFrac {
				return fmt.Errorf("prefilter %s at n=%d took %.4f of the extrapolated exact time, budget %.4f",
					row.Preset, row.SeqLen, row.FractionOfExact, maxPrefFrac)
			}
		}
	}
	return nil
}

func loadBaseline(path string) (Output, error) {
	var prev Output
	b, err := os.ReadFile(path)
	if err != nil {
		return prev, fmt.Errorf("baseline: %w", err)
	}
	if err := json.Unmarshal(b, &prev); err != nil {
		return prev, fmt.Errorf("baseline %s: %w", path, err)
	}
	return prev, nil
}

func writeDoc(out Output, path string) {
	doc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fatal(err)
	}
	doc = append(doc, '\n')
	if path == "-" {
		os.Stdout.Write(doc) //nolint:errcheck
		return
	}
	if err := atomicfile.WriteFile(path, doc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
