package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro"
	"repro/internal/seq"
	"repro/internal/serve"
)

// This file is the end-to-end durability test: a real reproserve
// process, a real SIGKILL, a real restart. The driver asserts the 202
// contract — a journaled job survives an uncontrolled crash, is
// recovered on the next boot, and completes with a result identical
// to a local sequential run — and that a corrupted disk-cache file is
// quarantined and recomputed, never served.

// daemon is one reproserve incarnation under test control.
type daemon struct {
	cmd  *exec.Cmd
	addr string
}

func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "reproserve")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches the binary on an ephemeral port and waits for
// the listening line plus a healthy /healthz.
func startDaemon(t *testing.T, bin, dataDir string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "2", "-data", dataDir)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill() //nolint:errcheck
			cmd.Wait()         //nolint:errcheck
		}
	})

	// The daemon announces its ephemeral port on stderr:
	//	reproserve: listening on 127.0.0.1:41234
	addrCh := make(chan string, 1)
	go func() {
		buf := make([]byte, 4096)
		var acc []byte
		for {
			n, err := stderr.Read(buf)
			acc = append(acc, buf[:n]...)
			if i := bytes.Index(acc, []byte("listening on ")); i >= 0 {
				if j := bytes.IndexByte(acc[i:], '\n'); j >= 0 {
					line := string(acc[i : i+j])
					addrCh <- strings.TrimPrefix(line, "listening on ")
					break
				}
			}
			if err != nil {
				addrCh <- ""
				break
			}
		}
		io.Copy(io.Discard, stderr) //nolint:errcheck
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never announced its address")
	}
	if addr == "" {
		t.Fatal("daemon exited before listening")
	}

	d := &daemon{cmd: cmd, addr: addr}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(d.url("/healthz"))
		if err == nil {
			resp.Body.Close()
			return d
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("daemon never became healthy")
	return nil
}

func (d *daemon) url(path string) string { return "http://" + d.addr + path }

func (d *daemon) sigkill(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	d.cmd.Wait() //nolint:errcheck
}

func (d *daemon) sigterm(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("daemon did not drain cleanly: %v", err)
	}
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, out
}

func getJobStatus(t *testing.T, d *daemon, id string) serve.JobStatus {
	t.Helper()
	resp, err := http.Get(d.url("/v1/jobs/" + id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitDone(t *testing.T, d *daemon, id string) serve.JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st := getJobStatus(t, d, id)
		if st.State == "failed" {
			t.Fatalf("job %s failed: %s", id, st.Error)
		}
		if st.State == "done" && len(st.Report) > 0 {
			return st
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return serve.JobStatus{}
}

// assertSameAnalysis compares analysis content (not engine stats,
// which legitimately vary across backends).
func assertSameAnalysis(t *testing.T, want *repro.Report, gotRaw json.RawMessage, what string) {
	t.Helper()
	var got repro.Report
	if err := json.Unmarshal(gotRaw, &got); err != nil {
		t.Fatalf("%s: bad report: %v", what, err)
	}
	if want.SeqLen != got.SeqLen || !reflect.DeepEqual(want.Tops, got.Tops) || !reflect.DeepEqual(want.Families, got.Families) {
		t.Fatalf("%s: report diverges from local sequential run", what)
	}
}

func scrapeCounter(t *testing.T, d *daemon, name string) int64 {
	t.Helper()
	resp, err := http.Get(d.url("/metrics"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap.Counters[name]
}

func TestCrashRecoveryAndDiskCorruption(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives a real daemon")
	}
	bin := buildDaemon(t)
	dataDir := t.TempDir()

	// Local ground truth: the strict sequential engine. 1500 residues
	// keeps a cold cluster analysis in the multi-second range — slow
	// enough that the SIGKILL below lands mid-computation, fast enough
	// for CI.
	q := seq.SyntheticTitin(1500, 7)
	truth, err := repro.Analyze(q.ID, q.String(), repro.Options{NumTops: 5})
	if err != nil {
		t.Fatal(err)
	}
	jobReq := serve.Request{
		ID: q.ID, Sequence: q.String(),
		Params:  serve.Params{Tops: 5},
		Backend: serve.BackendCluster, Slaves: 2,
	}

	// Incarnation 1: submit a cold cluster-backend job, give the worker
	// a moment to claim it, then SIGKILL mid-analysis.
	d1 := startDaemon(t, bin, dataDir)
	code, raw := postJSON(t, d1.url("/v1/jobs"), jobReq)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %.200s", code, raw)
	}
	var sub serve.JobStatus
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	d1.sigkill(t)

	// Incarnation 2: the journaled job must be recovered and complete
	// with the exact analysis a local sequential run produces.
	d2 := startDaemon(t, bin, dataDir)
	done := waitDone(t, d2, sub.JobID)
	assertSameAnalysis(t, truth, done.Report, "recovered job")

	// Clean shutdown, then corrupt the job's result in the disk tier.
	d2.sigterm(t)
	cacheDir := filepath.Join(dataDir, "cache")
	files, err := filepath.Glob(filepath.Join(cacheDir, "*.res"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no persisted cache files in %s (err=%v)", cacheDir, err)
	}
	blob, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0x40
	if err := os.WriteFile(files[0], blob, 0o644); err != nil {
		t.Fatal(err)
	}

	// Incarnation 3: the corrupted entry must be detected, quarantined,
	// and the job recomputed — the flipped bytes are never served.
	d3 := startDaemon(t, bin, dataDir)
	st := getJobStatus(t, d3, sub.JobID)
	if st.State == "done" && len(st.Report) > 0 {
		// Prewarm can only have served a checksum-clean entry; make
		// sure the corrupt one was counted, not trusted.
		assertSameAnalysis(t, truth, st.Report, "post-corruption fetch")
	}
	final := waitDone(t, d3, sub.JobID)
	assertSameAnalysis(t, truth, final.Report, "recomputed job")
	if n := scrapeCounter(t, d3, "cache/disk_corrupt"); n < 1 {
		t.Errorf("cache/disk_corrupt = %d, want >= 1", n)
	}
	bad, _ := filepath.Glob(filepath.Join(cacheDir, "*.bad"))
	if len(bad) == 0 {
		t.Error("corrupted cache file was not quarantined to .bad")
	}
	d3.sigterm(t)

	// The quarantine file never rejoins the cache: a fourth boot still
	// serves the recomputed, checksum-clean result.
	d4 := startDaemon(t, bin, dataDir)
	again := waitDone(t, d4, sub.JobID)
	assertSameAnalysis(t, truth, again.Report, "post-quarantine fetch")
	d4.sigterm(t)
}
