// Command reproserve is the analysis serving daemon: an HTTP/JSON
// front door over the repeat-detection engines, with a bounded
// admission queue, per-request deadlines, 429 backpressure, a
// content-addressed LRU result cache with singleflight dedup, and
// graceful drain on SIGTERM (see DESIGN.md section 9).
//
// With -data DIR the daemon becomes durable (DESIGN.md section 12):
// results persist in a checksummed disk cache tier that survives
// restarts, and POST /v1/jobs journals work in a write-ahead job
// store so accepted jobs survive even SIGKILL.
//
//	reproserve -addr :8080 -workers 8 -queue 64 -cache 512 -data /var/lib/repro
//	curl -s localhost:8080/v1/analyze -d '{"sequence":"ATGCATGCATGC","matrix":"paper-dna","tops":3}'
//	curl -s localhost:8080/v1/jobs -d '{"sequence":"ATGCATGCATGC","matrix":"paper-dna","tops":3}'
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/jobstore"
	"repro/internal/obs"
	"repro/internal/obs/profile"
	"repro/internal/obs/slo"
	"repro/internal/obs/trace"
	"repro/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "listen address (bare ports bind localhost)")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 0, "admission queue depth (0 = 4x workers)")
		cacheN  = flag.Int("cache", 0, "result cache entries (0 = default, -1 = disable)")
		timeout = flag.Duration("timeout", 30*time.Second, "default per-request deadline")
		maxSeq  = flag.Int("max-seq", 100000, "maximum sequence length admitted")
		drainT  = flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for queued work")
		traces  = flag.Int("traces", trace.DefaultMaxTraces, "request traces retained for /trace/{id} (0 = default, -1 = disable)")
		dataDir = flag.String("data", "", "durability dir: persistent disk cache + crash-safe job journal (empty = in-memory only)")
		cacheB  = flag.Int64("cache-bytes", 0, "result cache byte budget (0 = default)")
		jobW    = flag.Int("job-workers", 0, "async job worker pool size (0 = default)")
		rateL   = flag.Float64("rate-limit", 0, "admitted requests per second (0 = unlimited)")
		rateB   = flag.Int("rate-burst", 0, "rate-limit burst size (0 = ceil(rate-limit))")

		profDir   = flag.String("profile-dir", "", "continuous profiler capture dir (empty = profiler off)")
		profEvery = flag.Duration("profile-interval", 30*time.Second, "continuous profiler cycle period")
		profCPU   = flag.Duration("profile-cpu", 2*time.Second, "CPU profile length per cycle")
		profKeep  = flag.Int("profile-keep", 64, "capture files kept in the on-disk ring")
		sloAvail  = flag.Float64("slo-availability", 0, "availability SLO target, e.g. 0.999 (0 = default)")
		sloLatP   = flag.Float64("slo-latency-target", 0, "latency SLO good fraction, e.g. 0.99 (0 = default)")
		sloLatThr = flag.Duration("slo-latency-threshold", 0, "latency SLO threshold (0 = default 2s)")
	)
	flag.Parse()

	reg := obs.NewRegistry()
	jnl := obs.NewJournal(0)
	var col *trace.Collector
	if *traces >= 0 {
		col = trace.NewCollector(*traces, 0)
	}
	var disk *cache.Disk
	var jobs *jobstore.Store
	if *dataDir != "" {
		var err error
		if disk, err = cache.OpenDisk(filepath.Join(*dataDir, "cache"), nil); err != nil {
			fatal(fmt.Errorf("open disk cache: %w", err))
		}
		jobs, err = jobstore.Open(filepath.Join(*dataDir, "jobs"), nil)
		if err != nil {
			fatal(fmt.Errorf("open job store: %w", err))
		}
		defer jobs.Close() //nolint:errcheck // compaction is best-effort on exit
	}
	var prof *profile.Profiler
	if *profDir != "" {
		var err error
		prof, err = profile.New(profile.Config{
			Dir:         *profDir,
			Interval:    *profEvery,
			CPUDuration: *profCPU,
			MaxCaptures: *profKeep,
			Metrics:     reg,
		})
		if err != nil {
			fatal(err)
		}
		prof.Start()
		defer prof.Close()
	}
	srv := serve.New(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		MaxSequenceLen: *maxSeq,
		CacheEntries:   *cacheN,
		CacheBytes:     *cacheB,
		Disk:           disk,
		Jobs:           jobs,
		JobWorkers:     *jobW,
		RateLimit:      *rateL,
		RateBurst:      *rateB,
		Metrics:        reg,
		Journal:        jnl,
		Traces:         col,
		Profiles:       prof,
		SLO: slo.Config{
			AvailabilityTarget: *sloAvail,
			LatencyTarget:      *sloLatP,
			LatencyThreshold:   *sloLatThr,
		},
	})
	srv.Start()

	host, port, err := net.SplitHostPort(*addr)
	if err != nil {
		fatal(fmt.Errorf("bad -addr %q: %w", *addr, err))
	}
	if host == "" {
		host = "127.0.0.1"
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(host, port))
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "reproserve: listening on %s\n", ln.Addr())

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "reproserve: %v, draining\n", sig)
	case err := <-errCh:
		fatal(err)
	}

	// Drain order: stop accepting HTTP first (in-flight handlers keep
	// running), then let the worker pool finish everything queued.
	ctx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "reproserve: http shutdown: %v\n", err)
		httpSrv.Close()
	}
	if err := srv.Drain(ctx); err != nil {
		fatal(err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "reproserve: drained cleanly")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reproserve:", err)
	os.Exit(1)
}
