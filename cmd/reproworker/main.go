// Command reproworker runs one slave rank of a distributed repeats
// computation: it connects to a repromaster, receives the sequence and
// scoring configuration, and serves alignment tasks with the requested
// number of worker threads (one process per SMP node, one thread per
// CPU, as in the paper).
//
// The worker is crash-tolerant on both ends: it dials the master with
// exponential backoff plus jitter (workers are typically launched
// before or alongside the master), and if the master connection drops
// mid-run it reconnects and rejoins under a fresh rank instead of
// exiting, until the retry budget is exhausted.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"time"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/obs"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7946", "repromaster address")
		threads    = flag.Int("threads", runtime.GOMAXPROCS(0), "worker threads")
		timeout    = flag.Duration("timeout", time.Minute, "retry budget for (re)connecting to the master")
		rejoin     = flag.Bool("rejoin", true, "reconnect and rejoin after losing the master mid-run")
		hbInterval = flag.Duration("hb-interval", 2*time.Second, "heartbeat interval (negative disables)")
		hbTimeout  = flag.Duration("hb-timeout", 8*time.Second, "declare the master dead after this much silence")
		debugAddr  = flag.String("debug-addr", "", "serve /metrics, /trace and pprof on this address (binds localhost unless a host is given; empty disables)")
	)
	flag.Parse()

	var reg *obs.Registry
	if *debugAddr != "" {
		reg = obs.NewRegistry()
		dbg, err := obs.StartDebug(*debugAddr, reg, nil, nil)
		if err != nil {
			fatal(err)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "reproworker: debug endpoints on http://%s/{metrics,debug/pprof}\n", dbg.Addr)
	}

	opts := mpi.DefaultTCPOptions()
	opts.HeartbeatInterval = *hbInterval
	opts.HeartbeatTimeout = *hbTimeout
	opts.Metrics = reg

	for {
		comm, err := dialRetry(*addr, *timeout, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "reproworker: connected as rank %d of %d, %d threads\n",
			comm.Rank(), comm.Size(), *threads)
		err = cluster.RunSlaveOpts(comm, cluster.SlaveOptions{Threads: *threads, Metrics: reg})
		comm.Close()
		switch {
		case err == nil:
			fmt.Fprintln(os.Stderr, "reproworker: done")
			return
		case errors.Is(err, cluster.ErrMasterDown) && *rejoin:
			fmt.Fprintln(os.Stderr, "reproworker: master connection lost; attempting to rejoin")
		default:
			fatal(err)
		}
	}
}

// dialRetry dials the master with exponential backoff plus full jitter
// until a connection succeeds or the budget elapses; the jitter keeps a
// fleet of restarting workers from stampeding the master in lockstep.
func dialRetry(addr string, budget time.Duration, opts mpi.TCPOptions) (mpi.Comm, error) {
	deadline := time.Now().Add(budget)
	backoff := 200 * time.Millisecond
	const maxBackoff = 5 * time.Second
	for {
		attempt := min(maxBackoff, time.Until(deadline))
		if attempt <= 0 {
			attempt = time.Second
		}
		comm, err := mpi.DialTCPOpts(addr, attempt, opts)
		if err == nil {
			return comm, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("retry budget exhausted: %w", err)
		}
		time.Sleep(backoff/2 + rand.N(backoff/2))
		backoff = min(2*backoff, maxBackoff)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reproworker:", err)
	os.Exit(1)
}
