// Command reproworker runs one slave rank of a distributed repeats
// computation: it connects to a repromaster, receives the sequence and
// scoring configuration, and serves alignment tasks with the requested
// number of worker threads (one process per SMP node, one thread per
// CPU, as in the paper).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/cluster"
	"repro/internal/mpi"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7946", "repromaster address")
		threads = flag.Int("threads", runtime.GOMAXPROCS(0), "worker threads")
		timeout = flag.Duration("timeout", time.Minute, "connection timeout")
	)
	flag.Parse()

	// Retry until the master is up (workers are typically launched
	// before or alongside the master).
	var comm mpi.Comm
	var err error
	deadline := time.Now().Add(*timeout)
	for {
		comm, err = mpi.DialTCP(*addr, *timeout)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			fatal(err)
		}
		time.Sleep(250 * time.Millisecond)
	}
	defer comm.Close()
	fmt.Fprintf(os.Stderr, "reproworker: connected as rank %d of %d, %d threads\n",
		comm.Rank(), comm.Size(), *threads)
	if err := cluster.RunSlave(comm, *threads); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "reproworker: done")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reproworker:", err)
	os.Exit(1)
}
