// Command reprostat is a top-like aggregator over one or more
// reproserve shards: it polls each shard's /metrics JSON snapshot (and
// /debug/profiles ring index) on an interval, prints per-shard request
// rates, attributed CPU, process CPU, kernel tier mix, SLO burn rates,
// and profile-ring state, and reconciles the sum of per-request CPU
// attribution against the process CPU clock — the continuous check
// that the attribution layer accounts for the cycles the process
// actually burns.
//
//	reprostat http://127.0.0.1:8081 http://127.0.0.1:8082
//	reprostat -once -json http://127.0.0.1:8081
//	reprostat -interval 5s -check 0.15 http://127.0.0.1:8081
//
// With -check F the tool takes two polls one interval apart and exits
// non-zero unless the attributed CPU delta reconciles with the process
// CPU delta within fraction F (CI mode, run under live load so the
// window is compute-dominated). serve/attrib_cpu_ns is the per-request
// attribution summed at the serve layer, engine/cpu_ns the engine's own
// meters, and proc/cpu_ns the whole-process OS clock that bounds both
// from above.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

func main() {
	var (
		interval = flag.Duration("interval", 2*time.Second, "poll period")
		once     = flag.Bool("once", false, "print one snapshot and exit")
		check    = flag.Float64("check", 0, "CI mode: poll twice one interval apart and fail unless attributed CPU reconciles with engine CPU within this fraction")
		asJSON   = flag.Bool("json", false, "emit machine-readable JSON instead of the table")
		count    = flag.Int("n", 0, "number of poll rounds before exiting (0 = forever)")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: reprostat [flags] <shard base URL>...")
		os.Exit(2)
	}
	shards := flag.Args()
	client := &http.Client{Timeout: 10 * time.Second}

	if *check > 0 {
		runCheck(client, shards, *interval, *check, *asJSON)
		return
	}

	var prev map[string]*obs.Snapshot
	rounds := 0
	for {
		cur := pollAll(client, shards)
		if *asJSON {
			printJSON(shards, cur, prev, *interval)
		} else {
			printTable(client, shards, cur, prev, *interval)
		}
		rounds++
		if *once || (*count > 0 && rounds >= *count) {
			return
		}
		prev = cur
		time.Sleep(*interval)
	}
}

// pollAll scrapes every shard; unreachable shards map to nil.
func pollAll(client *http.Client, shards []string) map[string]*obs.Snapshot {
	out := make(map[string]*obs.Snapshot, len(shards))
	for _, s := range shards {
		snap, err := scrape(client, s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reprostat: %s: %v\n", s, err)
			out[s] = nil
			continue
		}
		out[s] = snap
	}
	return out
}

func scrape(client *http.Client, base string) (*obs.Snapshot, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// profileRing summarises a shard's /debug/profiles index.
func profileRing(client *http.Client, base string) (n int, bytes int64) {
	resp, err := client.Get(base + "/debug/profiles")
	if err != nil || resp.StatusCode != http.StatusOK {
		if resp != nil {
			resp.Body.Close()
		}
		return 0, 0
	}
	defer resp.Body.Close()
	var doc struct {
		Captures []struct {
			Bytes int64 `json:"bytes"`
		} `json:"captures"`
	}
	if json.NewDecoder(resp.Body).Decode(&doc) != nil {
		return 0, 0
	}
	for _, c := range doc.Captures {
		bytes += c.Bytes
	}
	return len(doc.Captures), bytes
}

// delta returns cur-prev for a counter (cur when prev is absent, so the
// first round shows absolute values).
func delta(cur, prev *obs.Snapshot, name string) int64 {
	if cur == nil {
		return 0
	}
	v := cur.Counters[name]
	if prev != nil {
		v -= prev.Counters[name]
	}
	return v
}

// recon is one shard's CPU reconciliation: attributed (per-request
// records summed in serve), engine (the engine's own meters), process
// (the OS clock, upper bound for both).
type recon struct {
	AttribNS int64 `json:"attrib_cpu_ns"`
	EngineNS int64 `json:"engine_cpu_ns"`
	ProcNS   int64 `json:"proc_cpu_ns"`
}

func reconOf(cur, prev *obs.Snapshot) recon {
	r := recon{
		AttribNS: delta(cur, prev, "serve/attrib_cpu_ns"),
		EngineNS: delta(cur, prev, "engine/cpu_ns"),
	}
	if cur != nil {
		r.ProcNS = cur.Gauges["proc/cpu_ns"]
		if prev != nil {
			r.ProcNS -= prev.Gauges["proc/cpu_ns"]
		}
	}
	return r
}

// deviation is the reconciliation error |1 - attrib/proc| — how far the
// per-request attribution falls short of (or overshoots) the process
// CPU clock over the window. Meaningful only when the window is
// compute-dominated: an idle window's proc CPU is mostly runtime
// background work the attribution layer deliberately does not claim.
func (r recon) deviation() float64 {
	if r.ProcNS == 0 && r.AttribNS == 0 {
		return 0
	}
	if r.ProcNS == 0 {
		return 1
	}
	return math.Abs(1 - float64(r.AttribNS)/float64(r.ProcNS))
}

func printTable(client *http.Client, shards []string, cur, prev map[string]*obs.Snapshot, ival time.Duration) {
	secs := ival.Seconds()
	fmt.Printf("%-28s %8s %10s %10s %10s %6s %8s %9s\n",
		"SHARD", "REQ/S", "CPU/S", "ENG/S", "PROC/S", "BURN", "TIERS", "PROFILES")
	for _, s := range shards {
		c := cur[s]
		if c == nil {
			fmt.Printf("%-28s %8s\n", trimShard(s), "DOWN")
			continue
		}
		p := prev[s]
		r := reconOf(c, p)
		reqs := delta(c, p, "serve/completed")
		rate := func(v int64) string {
			if p == nil {
				return fmtNS(v) // first round: absolute, not a rate
			}
			return fmtNS(int64(float64(v) / secs))
		}
		nProf, profB := profileRing(client, s)
		fmt.Printf("%-28s %8.1f %10s %10s %10s %6s %8s %6d/%s\n",
			trimShard(s),
			float64(reqs)/ifElse(p == nil, 1, secs),
			rate(r.AttribNS), rate(r.EngineNS), rate(r.ProcNS),
			burnOf(c), tierMix(c), nProf, fmtBytes(profB))
	}
}

// ifElse picks b when cond, else a. (Keeps the printf call readable.)
func ifElse(cond bool, a, b float64) float64 {
	if cond {
		return a
	}
	return b
}

func trimShard(s string) string {
	s = strings.TrimPrefix(strings.TrimPrefix(s, "http://"), "https://")
	if len(s) > 28 {
		s = s[:28]
	}
	return s
}

func fmtNS(ns int64) string {
	switch {
	case ns >= int64(time.Second):
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= int64(time.Millisecond):
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%dus", ns/1e3)
	}
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// burnOf renders the worst fast-window burn across SLO objectives.
func burnOf(s *obs.Snapshot) string {
	worst := int64(0)
	for name, v := range s.Gauges {
		if strings.HasPrefix(name, "slo/") && strings.HasSuffix(name, "/fast_burn_milli") && v > worst {
			worst = v
		}
	}
	return fmt.Sprintf("%.1f", float64(worst)/1000)
}

// tierMix renders the kernel tier alignment mix as s/w/v (scalar,
// int32x8 SWAR, int16x16 vector) percentage shares.
func tierMix(s *obs.Snapshot) string {
	var names []string
	for name := range s.Counters {
		if strings.HasPrefix(name, "engine/alignments_tier/") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var total int64
	for _, n := range names {
		total += s.Counters[n]
	}
	if total == 0 {
		return "-"
	}
	parts := make([]string, 0, len(names))
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%.0f", 100*float64(s.Counters[n])/float64(total)))
	}
	return strings.Join(parts, "/")
}

// jsonDoc is the -json output shape: per-shard reconciliation plus the
// fleet total.
type jsonDoc struct {
	IntervalS float64          `json:"interval_s"`
	Shards    map[string]recon `json:"shards"`
	Total     recon            `json:"total"`
	Deviation float64          `json:"deviation"`
}

func buildDoc(shards []string, cur, prev map[string]*obs.Snapshot, ival time.Duration) jsonDoc {
	doc := jsonDoc{IntervalS: ival.Seconds(), Shards: map[string]recon{}}
	for _, s := range shards {
		if cur[s] == nil {
			continue
		}
		var p *obs.Snapshot
		if prev != nil {
			p = prev[s]
		}
		r := reconOf(cur[s], p)
		doc.Shards[s] = r
		doc.Total.AttribNS += r.AttribNS
		doc.Total.EngineNS += r.EngineNS
		doc.Total.ProcNS += r.ProcNS
	}
	doc.Deviation = doc.Total.deviation()
	return doc
}

func printJSON(shards []string, cur, prev map[string]*obs.Snapshot, ival time.Duration) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(buildDoc(shards, cur, prev, ival)) //nolint:errcheck
}

// runCheck is CI mode: two polls bracket one interval of live load, and
// the attributed-CPU delta must reconcile with the process-CPU delta
// within frac. The window must be compute-dominated for the tolerance
// to be meaningful — CI drives load concurrently with the check.
func runCheck(client *http.Client, shards []string, ival time.Duration, frac float64, asJSON bool) {
	first := pollAll(client, shards)
	time.Sleep(ival)
	second := pollAll(client, shards)
	for _, s := range shards {
		if first[s] == nil || second[s] == nil {
			fmt.Fprintf(os.Stderr, "reprostat: shard %s unreachable\n", s)
			os.Exit(1)
		}
	}
	doc := buildDoc(shards, second, first, ival)
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(doc) //nolint:errcheck
	} else {
		fmt.Printf("reprostat: attrib %s, engine %s, proc %s over %s (deviation %.1f%%)\n",
			fmtNS(doc.Total.AttribNS), fmtNS(doc.Total.EngineNS), fmtNS(doc.Total.ProcNS),
			ival, 100*doc.Deviation)
	}
	if doc.Total.EngineNS == 0 {
		fmt.Fprintln(os.Stderr, "reprostat: no engine CPU spent during the check window; drive load first")
		os.Exit(1)
	}
	if doc.Deviation > frac {
		fmt.Fprintf(os.Stderr, "reprostat: attribution deviates %.1f%% from process CPU (allowed %.1f%%)\n",
			100*doc.Deviation, 100*frac)
		os.Exit(1)
	}
}
