// Command reprocli finds internal repeats in protein or DNA sequences:
// it computes nonoverlapping top alignments with the paper's O(n^3)
// algorithm and delineates repeat families from them.
//
// Usage:
//
//	reprocli -seq ATGCATGCATGC -matrix paper-dna -tops 3
//	reprocli -in proteins.fasta -tops 25 -workers 4
//	reprocli -titin 2000 -tops 50 -stats
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/atomicfile"
	"repro/internal/multialign"
	"repro/internal/obs"
	"repro/internal/seq"
)

func main() {
	var (
		inPath     = flag.String("in", "", "FASTA input file (default: stdin unless -seq/-titin)")
		rawSeq     = flag.String("seq", "", "literal sequence instead of FASTA input")
		titinLen   = flag.Int("titin", 0, "analyse a synthetic titin-like protein of this length")
		matrix     = flag.String("matrix", "BLOSUM62", "exchange matrix: BLOSUM62, PAM250, dna-unit, paper-dna")
		tops       = flag.Int("tops", repro.DefaultNumTops, "number of top alignments")
		gapOpen    = flag.Int("gap-open", 0, "gap opening penalty (0 = matrix default)")
		gapExt     = flag.Int("gap-ext", 0, "gap extension penalty (0 = matrix default)")
		minScore   = flag.Int("min-score", 0, "stop when no alignment reaches this score")
		lanes      = flag.Int("lanes", 0, "SIMD-style group lanes: 0, 4, 8, or 16")
		striped    = flag.Bool("striped", false, "use the cache-aware striped kernel")
		workers    = flag.Int("workers", 0, "shared-memory worker goroutines (0/1 = sequential)")
		slaves     = flag.Int("slaves", 0, "run an in-process cluster with this many slaves")
		threads    = flag.Int("threads", 1, "worker threads per cluster slave")
		spec       = flag.Bool("speculative", false, "speculative parallel acceptance (paper mode)")
		minPairs   = flag.Int("min-pairs", 0, "minimum matched pairs per alignment for delineation")
		preset     = flag.String("preset", "", "seed-filter-extend prefilter for long inputs: fast, balanced, or sensitive")
		seedK      = flag.Int("seed-k", 0, "prefilter seed length (0 = preset default)")
		seedMask   = flag.String("seed-mask", "", "prefilter spaced-seed mask over {0,1} (overrides -seed-k)")
		seedMaxOcc = flag.Int("seed-max-occ", 0, "prefilter per-seed occurrence cap (0 = preset default)")
		seedBand   = flag.Int("seed-band", 0, "prefilter diagonal band width (0 = preset default)")
		seedPad    = flag.Int("seed-pad", 0, "prefilter candidate window padding (0 = preset default)")
		stats      = flag.Bool("stats", false, "print engine statistics")
		showAln    = flag.Int("align", 0, "render the first N top alignments residue by residue")
		metricsOut = flag.String("metrics-out", "", "write the observability snapshot (metrics + trace tail) as JSON to this file (- for stdout)")
		kernelTier = flag.String("kernel-tier", "", "force a group-kernel tier: scalar, int32x8, int16x16 (default auto)")
		diag       = flag.Bool("diag", false, "print SIMD kernel-tier diagnostics and exit")
	)
	flag.Parse()

	if err := multialign.SetKernelTier(*kernelTier); err != nil {
		fatal(err)
	}
	if *diag {
		fmt.Printf("kernel tiers: detected=%s active=%s (avx2=%t avx512=%t)\n",
			multialign.DetectedTier(), multialign.ActiveTier(),
			multialign.DetectedTier() >= multialign.TierInt32x8, multialign.DetectedAVX512())
		return
	}

	opt := repro.Options{
		Matrix: *matrix, NumTops: *tops,
		GapOpen: *gapOpen, GapExt: *gapExt, MinScore: *minScore,
		Lanes: *lanes, Striped: *striped,
		Workers: *workers, Slaves: *slaves, ThreadsPerSlave: *threads,
		Speculative: *spec, MinPairs: *minPairs,
		Preset: *preset, SeedK: *seedK, SeedMask: *seedMask,
		SeedMaxOcc: *seedMaxOcc, SeedBand: *seedBand, SeedPad: *seedPad,
	}
	if *metricsOut != "" {
		opt.Metrics = obs.NewRegistry()
		opt.Trace = obs.NewJournal(0)
	}

	var reports []*repro.Report
	var err error
	switch {
	case *rawSeq != "":
		var rep *repro.Report
		rep, err = repro.Analyze("cmdline", *rawSeq, opt)
		reports = []*repro.Report{rep}
	case *titinLen > 0:
		q := seq.SyntheticTitin(*titinLen, 1)
		var rep *repro.Report
		rep, err = repro.Analyze(q.ID, q.String(), opt)
		reports = []*repro.Report{rep}
	case *inPath != "":
		f, ferr := os.Open(*inPath)
		if ferr != nil {
			fatal(ferr)
		}
		defer f.Close()
		reports, err = repro.AnalyzeFASTA(f, opt)
	default:
		reports, err = repro.AnalyzeFASTA(os.Stdin, opt)
	}
	if err != nil {
		fatal(err)
	}

	for _, rep := range reports {
		if err := repro.WriteReport(os.Stdout, rep); err != nil {
			fatal(err)
		}
		for i := 0; i < *showAln && i < len(rep.Tops); i++ {
			block, err := repro.FormatAlignment(rep.Residues, rep.Tops[i], 0)
			if err != nil {
				fatal(err)
			}
			fmt.Print(block)
		}
		if *stats {
			if pf := rep.Prefilter; pf != nil {
				fmt.Printf("  prefilter %s: k=%d kmers=%d dropped=%d pairs=%d segments=%d clusters=%d candidates=%d window-cells=%d (%.2f%% of pair space)\n",
					pf.Preset, pf.K, pf.Kmers, pf.DroppedKmers, pf.Pairs, pf.Segments,
					pf.Clusters, pf.Candidates, pf.WindowCells,
					100*float64(pf.WindowCells)/float64(pf.SequenceCells))
			}
			fmt.Printf("  stats: alignments=%d realignments=%d tracebacks=%d cells=%d shadow-ends=%d kernel-tier=%s\n",
				rep.Stats.Alignments, rep.Stats.Realignments, rep.Stats.Tracebacks,
				rep.Stats.Cells, rep.Stats.ShadowEnds, rep.Stats.KernelTier)
			if rep.Stats.RealignmentReduction > 0 {
				fmt.Printf("  queue heuristic avoided %.1f%% of potential realignments (paper: 90-97%%)\n",
					100*rep.Stats.RealignmentReduction)
			}
		}
	}

	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, opt.Metrics, opt.Trace); err != nil {
			fatal(err)
		}
	}
}

// writeMetrics dumps the registry snapshot and the journal tail as one
// JSON document, to stdout when path is "-".
func writeMetrics(path string, reg *obs.Registry, jnl *obs.Journal) error {
	doc := struct {
		Metrics obs.Snapshot `json:"metrics"`
		Dropped uint64       `json:"trace_dropped"`
		Trace   []obs.Event  `json:"trace"`
	}{reg.Snapshot(), jnl.Dropped(), jnl.Tail(1024)}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return atomicfile.WriteFile(path, out, 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reprocli:", err)
	os.Exit(1)
}
