// Command table2 regenerates Table 2 of the paper: maximum alignment
// times for the conventional kernel versus the SIMD-style group kernels
// ("SSE" computes 4 matrices at once, "SSE2" 8; this reproduction's
// lane engine is SWAR on uint64 words — see DESIGN.md).
//
// The paper's column "3.0 / 4" reads "three seconds to align four
// sequence pairs"; the table here prints the same shape plus the derived
// speed improvement (time for W conventional alignments / group time).
// It also reports the cache-aware striping effect of Section 5.1.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/align"
	"repro/internal/multialign"
	"repro/internal/scoring"
	"repro/internal/seq"
)

func main() {
	var (
		length = flag.Int("length", 3000, "titin-like sequence length (paper: 34350)")
		reps   = flag.Int("reps", 3, "timing repetitions (best is reported)")
		seed   = flag.Uint64("seed", 1, "generator seed")
	)
	flag.Parse()

	titin := seq.SyntheticTitin(*length, *seed)
	s := titin.Codes
	m := len(s)
	r := m / 2 // the largest matrix, as in the paper's 17175x17175
	params := align.Params{Exch: scoring.BLOSUM62, Gap: scoring.DefaultProteinGap}

	fmt.Printf("Table 2: maximum alignment times, split %d of a %d-residue titin-like protein\n\n", r, m)

	// conventional: one scalar matrix
	conv := best(*reps, func() {
		align.Score(params, s[:r], s[r:])
	})
	cells := float64(r) * float64(m-r)
	fmt.Printf("%-22s %10.3fs / 1 matrix   (%.0fM cells/s)\n",
		"conventional", conv.Seconds(), cells/conv.Seconds()/1e6)

	// ILP group kernel (the production group kernel: 4 independent
	// int32 lanes sharing lookups and loop control, Figure 7 layout)
	r0 := r - 2
	ilp := best(*reps, func() {
		multialign.ScoreGroupILP(params, s, r0, nil)
	})
	fmt.Printf("%-22s %10.3fs / 4 matrices (speed improvement %.2fx)\n",
		"ILP-4 (interleaved)", ilp.Seconds(), conv.Seconds()*4/ilp.Seconds())

	ilpStriped := best(*reps, func() {
		multialign.ScoreGroupILPStriped(params, s, r0, nil, 0)
	})
	fmt.Printf("%-22s %10.3fs / 4 matrices (speed improvement %.2fx; %.2fx from striping)\n",
		"ILP-4 striped", ilpStriped.Seconds(),
		conv.Seconds()*4/ilpStriped.Seconds(), ilp.Seconds()/ilpStriped.Seconds())

	// SWAR lane kernels: centre the group on the largest split
	for _, lanes := range []int{4, 8} {
		r0 := r - lanes/2
		dur := best(*reps, func() {
			g, err := multialign.ScoreGroup(params, s, r0, lanes, nil)
			if err != nil {
				fatal(err)
			}
			if g.Saturated {
				fatal(fmt.Errorf("lane saturation at length %d; lower -length", m))
			}
		})
		improvement := conv.Seconds() * float64(lanes) / dur.Seconds()
		name := fmt.Sprintf("SWAR-%d (paper: SSE", lanes)
		if lanes == 8 {
			name = fmt.Sprintf("SWAR-%d (paper: SSE2", lanes)
		}
		fmt.Printf("%-22s %10.3fs / %d matrices (speed improvement %.2fx; paper: %s)\n",
			name+")", dur.Seconds(), lanes, improvement,
			map[int]string{4: "6.9x on P3, 6.0x on P4", 8: "9.8x"}[lanes])
	}

	// cache-aware striping (Section 5.1): striped vs row-wise scalar
	fmt.Println()
	striped := best(*reps, func() {
		align.ScoreStriped(params, s[:r], s[r:], nil, r, 0)
	})
	fmt.Printf("%-22s %10.3fs / 1 matrix   (%.2fx vs row-wise; paper: ~1.16x scalar, up to 6.5x SIMD)\n",
		"striped scalar", striped.Seconds(), conv.Seconds()/striped.Seconds())
}

// best runs f reps times and returns the fastest wall time.
func best(reps int, f func()) time.Duration {
	bestD := time.Duration(1<<62 - 1)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		f()
		if d := time.Since(t0); d < bestD {
			bestD = d
		}
	}
	return bestD
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "table2:", err)
	os.Exit(1)
}
