package repro

import (
	"fmt"
	"strings"
)

// FormatAlignment renders a top alignment the way the paper prints its
// examples — two gapped residue lines with a match line between them:
//
//	2 TTACAGA 8
//	  || ||.|
//	2 TT-GC-GA 8    (positions refer to the full sequence)
//
// residues is the full analysed sequence (1-based positions match the
// alignment's pairs); width wraps the block (0 = 60 columns). Matched
// identical residues are marked '|', mismatches '.'; unaligned residues
// between matches appear against '-' gaps.
func FormatAlignment(residues string, top TopAlignment, width int) (string, error) {
	if width <= 0 {
		width = 60
	}
	if len(top.Pairs) == 0 {
		return "", fmt.Errorf("repro: alignment %d has no pairs", top.Index)
	}
	for _, p := range top.Pairs {
		if p.I < 1 || p.J < 1 || p.I > len(residues) || p.J > len(residues) {
			return "", fmt.Errorf("repro: pair %v outside sequence of length %d", p, len(residues))
		}
	}

	var line1, mid, line2 []byte
	emit := func(a, m, b byte) {
		line1 = append(line1, a)
		mid = append(mid, m)
		line2 = append(line2, b)
	}
	for k, p := range top.Pairs {
		if k > 0 {
			prev := top.Pairs[k-1]
			// unaligned stretches between consecutive matches: residues
			// of one side against gaps in the other
			for i := prev.I + 1; i < p.I; i++ {
				emit(residues[i-1], ' ', '-')
			}
			for j := prev.J + 1; j < p.J; j++ {
				emit('-', ' ', residues[j-1])
			}
		}
		a, b := residues[p.I-1], residues[p.J-1]
		m := byte('.')
		if a == b {
			m = '|'
		}
		emit(a, m, b)
	}

	var sb strings.Builder
	start, end := top.Pairs[0], top.Pairs[len(top.Pairs)-1]
	fmt.Fprintf(&sb, "top %d (score %d): %d-%d aligned to %d-%d\n",
		top.Index, top.Score, start.I, end.I, start.J, end.J)
	for off := 0; off < len(line1); off += width {
		hi := off + width
		if hi > len(line1) {
			hi = len(line1)
		}
		fmt.Fprintf(&sb, "  %s\n  %s\n  %s\n", line1[off:hi], mid[off:hi], line2[off:hi])
		if hi < len(line1) {
			sb.WriteByte('\n')
		}
	}
	return sb.String(), nil
}
