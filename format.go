package repro

import (
	"fmt"
	"strings"
)

// FormatAlignment renders a top alignment the way the paper prints its
// examples — two gapped residue lines with a match line between them,
// each block carrying the start and end residue positions of both rows
// so wrapped alignments stay navigable:
//
//	top 1 (score 13): 2-8 aligned to 10-16
//	   2 TTACAGA 8
//	     || ||.|
//	  10 TT-GC-GA 16    (positions refer to the full sequence)
//
// residues is the full analysed sequence (1-based positions match the
// alignment's pairs); width wraps the block (0 = 60 columns). Matched
// identical residues are marked '|', mismatches '.'; unaligned residues
// between matches appear against '-' gaps. A block in which one row is
// all gaps repeats that row's previous position for both start and end.
func FormatAlignment(residues string, top TopAlignment, width int) (string, error) {
	if width <= 0 {
		width = 60
	}
	if len(top.Pairs) == 0 {
		return "", fmt.Errorf("repro: alignment %d has no pairs", top.Index)
	}
	for _, p := range top.Pairs {
		if p.I < 1 || p.J < 1 || p.I > len(residues) || p.J > len(residues) {
			return "", fmt.Errorf("repro: pair %v outside sequence of length %d", p, len(residues))
		}
	}

	// Build the three display rows plus, per column, the residue
	// position each row shows there (0 = gap column for that row).
	var line1, mid, line2 []byte
	var pos1, pos2 []int
	emit := func(a, m, b byte, pa, pb int) {
		line1 = append(line1, a)
		mid = append(mid, m)
		line2 = append(line2, b)
		pos1 = append(pos1, pa)
		pos2 = append(pos2, pb)
	}
	for k, p := range top.Pairs {
		if k > 0 {
			prev := top.Pairs[k-1]
			// unaligned stretches between consecutive matches: residues
			// of one side against gaps in the other
			for i := prev.I + 1; i < p.I; i++ {
				emit(residues[i-1], ' ', '-', i, 0)
			}
			for j := prev.J + 1; j < p.J; j++ {
				emit('-', ' ', residues[j-1], 0, j)
			}
		}
		a, b := residues[p.I-1], residues[p.J-1]
		m := byte('.')
		if a == b {
			m = '|'
		}
		emit(a, m, b, p.I, p.J)
	}

	var sb strings.Builder
	start, end := top.Pairs[0], top.Pairs[len(top.Pairs)-1]
	fmt.Fprintf(&sb, "top %d (score %d): %d-%d aligned to %d-%d\n",
		top.Index, top.Score, start.I, end.I, start.J, end.J)

	// Position columns are sized for the largest coordinate so the
	// residue rows of every block stay vertically aligned.
	numw := len(fmt.Sprint(max(end.I, end.J)))
	carry1, carry2 := start.I, start.J
	for off := 0; off < len(line1); off += width {
		hi := min(off+width, len(line1))
		s1, e1 := blockSpan(pos1[off:hi], &carry1)
		s2, e2 := blockSpan(pos2[off:hi], &carry2)
		fmt.Fprintf(&sb, "  %*d %s %d\n", numw, s1, line1[off:hi], e1)
		fmt.Fprintf(&sb, "  %*s %s\n", numw, "", mid[off:hi])
		fmt.Fprintf(&sb, "  %*d %s %d\n", numw, s2, line2[off:hi], e2)
		if hi < len(line1) {
			sb.WriteByte('\n')
		}
	}
	return sb.String(), nil
}

// blockSpan returns the first and last residue positions a row shows
// within one wrapped block. A row that is all gaps in the block
// reports its carried position twice; otherwise carry advances to the
// block's last residue.
func blockSpan(pos []int, carry *int) (start, end int) {
	start, end = 0, 0
	for _, p := range pos {
		if p == 0 {
			continue
		}
		if start == 0 {
			start = p
		}
		end = p
	}
	if start == 0 {
		return *carry, *carry
	}
	*carry = end
	return start, end
}
