package repro

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// FuzzAnalyzeDNA drives the whole pipeline with arbitrary byte strings:
// valid DNA must analyse without panicking and uphold the nonoverlap
// invariant; invalid input must error cleanly.
func FuzzAnalyzeDNA(f *testing.F) {
	f.Add("ATGCATGCATGC", uint8(3))
	f.Add("AACAACAACAAC", uint8(2))
	f.Add("A", uint8(1))
	f.Add("", uint8(5))
	f.Add("ACGTNNNNN", uint8(4))
	f.Add(strings.Repeat("GATTACA", 12), uint8(6))
	f.Fuzz(func(t *testing.T, s string, tops uint8) {
		if len(s) > 300 {
			s = s[:300]
		}
		rep, err := Analyze("fuzz", s, Options{
			Matrix:  "dna-unit",
			NumTops: 1 + int(tops%10),
		})
		if err != nil {
			return // invalid letters / too short: fine, as long as no panic
		}
		seen := map[Pair]bool{}
		for _, top := range rep.Tops {
			if top.Score <= 0 {
				t.Fatalf("non-positive top score %d", top.Score)
			}
			for _, p := range top.Pairs {
				if p.I < 1 || p.J <= p.I || p.J > rep.SeqLen {
					t.Fatalf("invalid pair %v for length %d", p, rep.SeqLen)
				}
				if seen[p] {
					t.Fatalf("pair %v reused across top alignments", p)
				}
				seen[p] = true
			}
		}
	})
}

// FuzzFASTA exercises the FASTA parser with arbitrary input; it must
// either error or produce sequences that re-encode cleanly.
func FuzzFASTA(f *testing.F) {
	f.Add(">a\nACGT\n")
	f.Add(">a desc here\nACGT\n>b\nTTTT\n")
	f.Add("")
	f.Add(">\nACGT")
	f.Add("no header\n")
	f.Add(">x\nAC GT*\n\n>y\n\n")
	f.Fuzz(func(t *testing.T, in string) {
		reports, err := AnalyzeFASTA(strings.NewReader(in), Options{
			Matrix: "dna-unit", NumTops: 2,
		})
		if err != nil {
			return
		}
		for _, rep := range reports {
			if rep.SeqID == "" {
				t.Fatal("record with empty id accepted")
			}
			if rep.SeqLen != len(rep.Residues) {
				t.Fatalf("SeqLen %d != len(Residues) %d", rep.SeqLen, len(rep.Residues))
			}
		}
	})
}

// FuzzSnapshotCodec feeds arbitrary bytes to the telemetry snapshot
// decoder: it must never panic or over-allocate, and anything it
// accepts must re-encode to the same canonical bytes (decode∘encode is
// the identity on the valid subset of the wire format).
func FuzzSnapshotCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("OBS1"))
	f.Add([]byte("OBJ1"))
	reg := obs.NewRegistry()
	reg.Counter("engine/alignments").Add(42)
	reg.Gauge("cluster/live_slaves").Set(2)
	reg.Histogram("engine/align_ns").Observe(time.Millisecond)
	f.Add(reg.Snapshot().Encode())
	f.Add(obs.NewRegistry().Snapshot().Encode())
	f.Fuzz(func(t *testing.T, b []byte) {
		snap, err := obs.DecodeSnapshot(b)
		if err != nil {
			return
		}
		enc := snap.Encode()
		back, err := obs.DecodeSnapshot(enc)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if !reflect.DeepEqual(back, snap) {
			t.Fatalf("decode/encode not stable:\n got %+v\nwant %+v", back, snap)
		}
		// Note enc need not equal b byte-for-byte: duplicate names in b
		// collapse into one map entry. But the canonical form must be a
		// fixed point.
		if !reflect.DeepEqual(back.Encode(), enc) {
			t.Fatal("canonical encoding is not a fixed point")
		}
	})
}

// FuzzEventsCodec does the same for the journal wire format. Event
// elements are fixed-width, so here a successful decode must round-trip
// to the exact input bytes.
func FuzzEventsCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("OBJ1"))
	f.Add([]byte("OBS1"))
	f.Add(obs.EncodeEvents(nil))
	f.Add(obs.EncodeEvents([]obs.Event{
		{Seq: 1, At: 10, Kind: obs.EvEnqueue, Rank: -1, R: 3, Arg: 0},
		{Seq: 2, At: 30, Kind: obs.EvAccept, Rank: 1, R: 3, Arg: 999},
	}))
	f.Fuzz(func(t *testing.T, b []byte) {
		events, err := obs.DecodeEvents(b)
		if err != nil {
			return
		}
		enc := obs.EncodeEvents(events)
		if string(enc) != string(b) {
			t.Fatalf("accepted input is not canonical:\n in  %x\n out %x", b, enc)
		}
	})
}
