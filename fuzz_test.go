package repro

import (
	"strings"
	"testing"
)

// FuzzAnalyzeDNA drives the whole pipeline with arbitrary byte strings:
// valid DNA must analyse without panicking and uphold the nonoverlap
// invariant; invalid input must error cleanly.
func FuzzAnalyzeDNA(f *testing.F) {
	f.Add("ATGCATGCATGC", uint8(3))
	f.Add("AACAACAACAAC", uint8(2))
	f.Add("A", uint8(1))
	f.Add("", uint8(5))
	f.Add("ACGTNNNNN", uint8(4))
	f.Add(strings.Repeat("GATTACA", 12), uint8(6))
	f.Fuzz(func(t *testing.T, s string, tops uint8) {
		if len(s) > 300 {
			s = s[:300]
		}
		rep, err := Analyze("fuzz", s, Options{
			Matrix:  "dna-unit",
			NumTops: 1 + int(tops%10),
		})
		if err != nil {
			return // invalid letters / too short: fine, as long as no panic
		}
		seen := map[Pair]bool{}
		for _, top := range rep.Tops {
			if top.Score <= 0 {
				t.Fatalf("non-positive top score %d", top.Score)
			}
			for _, p := range top.Pairs {
				if p.I < 1 || p.J <= p.I || p.J > rep.SeqLen {
					t.Fatalf("invalid pair %v for length %d", p, rep.SeqLen)
				}
				if seen[p] {
					t.Fatalf("pair %v reused across top alignments", p)
				}
				seen[p] = true
			}
		}
	})
}

// FuzzFASTA exercises the FASTA parser with arbitrary input; it must
// either error or produce sequences that re-encode cleanly.
func FuzzFASTA(f *testing.F) {
	f.Add(">a\nACGT\n")
	f.Add(">a desc here\nACGT\n>b\nTTTT\n")
	f.Add("")
	f.Add(">\nACGT")
	f.Add("no header\n")
	f.Add(">x\nAC GT*\n\n>y\n\n")
	f.Fuzz(func(t *testing.T, in string) {
		reports, err := AnalyzeFASTA(strings.NewReader(in), Options{
			Matrix: "dna-unit", NumTops: 2,
		})
		if err != nil {
			return
		}
		for _, rep := range reports {
			if rep.SeqID == "" {
				t.Fatal("record with empty id accepted")
			}
			if rep.SeqLen != len(rep.Residues) {
				t.Fatalf("SeqLen %d != len(Residues) %d", rep.SeqLen, len(rep.Residues))
			}
		}
	})
}
