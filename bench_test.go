// Benchmarks regenerating the paper's evaluation artifacts. One bench
// (or bench family) per table and figure; cmd/table1, cmd/table2 and
// cmd/figure8 print the corresponding human-readable tables. See
// EXPERIMENTS.md for the paper-vs-measured record.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/align"
	"repro/internal/dessim"
	"repro/internal/multialign"
	"repro/internal/oldalgo"
	"repro/internal/parallel"
	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/topalign"
)

var benchParams = align.Params{Exch: scoring.BLOSUM62, Gap: scoring.DefaultProteinGap}

// --- Table 1: old vs new sequential algorithm ---------------------------

// BenchmarkTable1New times the new O(n^3) algorithm on titin-like
// prefixes (the paper's lengths scaled down; 10 top alignments).
func BenchmarkTable1New(b *testing.B) {
	for _, n := range []int{200, 400, 600} {
		s := seq.SyntheticTitin(n, 1).Codes
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := topalign.Find(s, topalign.Config{Params: benchParams, NumTops: 10}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable1OldNaive times the O(n^4) baseline (Equation-1 gap
// scans, exhaustive realignment). Deliberately small lengths: this is
// the algorithm the paper replaced.
func BenchmarkTable1OldNaive(b *testing.B) {
	for _, n := range []int{100, 200} {
		s := seq.SyntheticTitin(n, 1).Codes
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := oldalgo.Find(s, oldalgo.Config{
					Params: benchParams, NumTops: 10, Kernel: oldalgo.KernelNaive,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable1OldGotoh is the ablation between the two: the fast
// kernel but none of the new algorithm's realignment avoidance. The gap
// to BenchmarkTable1New isolates the queue heuristic + row caching.
func BenchmarkTable1OldGotoh(b *testing.B) {
	for _, n := range []int{200, 400} {
		s := seq.SyntheticTitin(n, 1).Codes
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := oldalgo.Find(s, oldalgo.Config{
					Params: benchParams, NumTops: 10, Kernel: oldalgo.KernelGotoh,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Table 2: conventional vs multi-matrix kernels ----------------------

const table2Len = 2048

func table2Input() []byte { return seq.SyntheticTitin(table2Len, 1).Codes }

// BenchmarkTable2Conventional times one scalar matrix at the largest
// split (the paper's "conventional" column).
func BenchmarkTable2Conventional(b *testing.B) {
	s := table2Input()
	r := len(s) / 2
	b.SetBytes(int64(r) * int64(len(s)-r))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		align.Score(benchParams, s[:r], s[r:])
	}
}

// BenchmarkTable2ILP4 times four neighbouring matrices in the
// interleaved ILP kernel (this reproduction's production group kernel).
func BenchmarkTable2ILP4(b *testing.B) {
	s := table2Input()
	r0 := len(s)/2 - 2
	b.SetBytes(4 * int64(len(s)/2) * int64(len(s)-len(s)/2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		multialign.ScoreGroupILPStriped(benchParams, s, r0, nil, 0)
	}
}

// BenchmarkTable2SWAR4 times the packed-lane kernel standing in for SSE.
func BenchmarkTable2SWAR4(b *testing.B) {
	s := table2Input()
	r0 := len(s)/2 - 2
	b.SetBytes(4 * int64(len(s)/2) * int64(len(s)-len(s)/2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := multialign.ScoreGroup(benchParams, s, r0, 4, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2SWAR8 times the 8-lane kernel standing in for SSE2.
func BenchmarkTable2SWAR8(b *testing.B) {
	s := table2Input()
	r0 := len(s)/2 - 4
	b.SetBytes(8 * int64(len(s)/2) * int64(len(s)-len(s)/2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := multialign.ScoreGroup(benchParams, s, r0, 8, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Section 5.1: cache-aware striping ----------------------------------

func BenchmarkStripingScalar(b *testing.B) {
	s := seq.SyntheticTitin(4096, 1).Codes
	r := len(s) / 2
	for _, width := range []int{0, 1 << 30} { // default stripes vs one giant stripe
		name := "striped"
		if width > len(s) {
			name = "rowwise"
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(r) * int64(len(s)-r))
			for i := 0; i < b.N; i++ {
				align.ScoreStriped(benchParams, s[:r], s[r:], nil, r, width)
			}
		})
	}
}

func BenchmarkStripingGroup(b *testing.B) {
	s := seq.SyntheticTitin(4096, 1).Codes
	r0 := len(s)/2 - 2
	cells := 4 * int64(len(s)/2) * int64(len(s)-len(s)/2)
	b.Run("rowwise", func(b *testing.B) {
		b.SetBytes(cells)
		for i := 0; i < b.N; i++ {
			multialign.ScoreGroupILP(benchParams, s, r0, nil)
		}
	})
	b.Run("striped", func(b *testing.B) {
		b.SetBytes(cells)
		for i := 0; i < b.N; i++ {
			multialign.ScoreGroupILPStriped(benchParams, s, r0, nil, 0)
		}
	})
}

// --- Figure 8: cluster speedup simulation -------------------------------

// BenchmarkFigure8 measures the discrete-event replay itself (the
// figures come from cmd/figure8; this keeps the simulator honest about
// its own cost).
func BenchmarkFigure8(b *testing.B) {
	s := seq.SyntheticTitin(400, 1).Codes
	trace, err := dessim.Record(s, topalign.Config{Params: benchParams, NumTops: 10})
	if err != nil {
		b.Fatal(err)
	}
	model := dessim.PaperModel()
	for _, procs := range []int{16, 128} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dessim.Simulate(trace, model, procs, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- throughput and parallel-engine overhead ----------------------------

// BenchmarkCellThroughput reports raw kernel cell rate (the paper's
// Pentium III manages ~155M cells/s conventionally, >1G with SSE).
func BenchmarkCellThroughput(b *testing.B) {
	s := seq.SyntheticTitin(2048, 3).Codes
	r := len(s) / 2
	cells := int64(r) * int64(len(s)-r)
	b.SetBytes(cells)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		align.Score(benchParams, s[:r], s[r:])
	}
}

// BenchmarkParallelOverhead compares the sequential driver against the
// shared-memory scheduler at 1 and 2 workers on the same input. On a
// single-CPU host this measures pure scheduling overhead (Section 5.2's
// scaling itself needs real cores; see dessim/cmd/figure8).
func BenchmarkParallelOverhead(b *testing.B) {
	s := seq.SyntheticTitin(300, 2).Codes
	cfg := topalign.Config{Params: benchParams, NumTops: 10}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := topalign.Find(s, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, w := range []int{1, 2} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := parallel.Find(s, cfg, parallel.Config{Workers: w, Speculative: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGroupScheduling compares scalar task scheduling against the
// Section 4.1 group mode end to end.
func BenchmarkGroupScheduling(b *testing.B) {
	s := seq.SyntheticTitin(400, 4).Codes
	for _, lanes := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("lanes=%d", lanes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := topalign.Config{Params: benchParams, NumTops: 10, GroupLanes: lanes}
				if _, err := topalign.Find(s, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
